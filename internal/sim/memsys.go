package sim

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/markov"
	"repro/internal/mem"
	"repro/internal/prefetch"
	"repro/internal/prefetch/registry"
	"repro/internal/simtrace"
	"repro/internal/stats"
	"repro/internal/tlb"
)

// strideRecentCap bounds the set of recently stride-requested lines used to
// compute the stride-adjusted content metrics of Figures 7/8.
const strideRecentCap = 8192

// MemSystem is the event-driven memory hierarchy below the core. It
// implements cpu.MemPort.
type MemSystem struct {
	cfg   *Config
	space *mem.AddressSpace

	l1   *cache.Cache
	l2   *cache.Cache
	dtlb *tlb.TLB

	fsb  *bus.Bus
	l2q  *bus.Arbiter
	busq *bus.Arbiter

	// stride and mkv keep typed handles for checkpointing and the tuning
	// experiments; aux is the cfg.Engine zoo entrant. All miss-stream
	// engines are *driven* only through ports, the ordered Prefetcher
	// chain (stride first, then the L2-stream engines), so adding an
	// engine to the zoo never touches the observe code again. The CDP is
	// not in the chain: its stored-depth/rescan coupling with the cache
	// needs the full core.Prefetcher surface (see DESIGN.md §12).
	stride *prefetch.Stride
	cdp    *core.Prefetcher
	mkv    *markov.Markov
	aux    prefetch.Prefetcher
	ports  []enginePort

	// engBuf is the scratch slice engine predictions are appended into;
	// reused across Observe calls so the steady-state miss path allocates
	// nothing.
	engBuf []uint32

	inflight map[uint32]*bus.Request // by physical line base
	sched    scheduler
	reqID    uint64
	now      int64

	// reqFree recycles bus.Request objects. A request is referenced only
	// by the two arbiters, the inflight map, and its scheduled fill event,
	// so it can be recycled the moment its fill completes (or it is
	// squashed) without aliasing a live transaction. The freelist keeps
	// the per-request allocation off the miss path entirely.
	reqFree []*bus.Request

	// flying counts granted but not-yet-arrived non-injected transfers.
	// Maintained only under -tags simdebug (debugInvariants), where
	// checkInvariants reconciles it against the inflight map.
	flying int

	l2PortFree int64

	strideRecent map[uint32]bool
	strideFIFO   []uint32

	injLCG     uint32
	lastInject int64
	nextPumpAt int64 // earliest scheduled pump event (0 = none)

	// lineBuf is the scratch buffer the content scanner reads fills
	// through; the scanner only inspects the bytes, so one buffer per
	// memory system keeps line copies off the heap.
	lineBuf [LineSize]byte

	st   *stats.Counters
	mptu *stats.MPTUSeries

	// chainSeq numbers content-prefetch chains. It is maintained
	// unconditionally — the counter is cheap, deterministic, and feeds
	// stats.CDPChains whether or not a tracer is attached.
	chainSeq uint64

	// tr, when non-nil, receives structured events (see internal/simtrace).
	// Every emission is guarded by tr.Enabled() so the disabled (nil) path
	// costs one comparison and zero allocations.
	tr *simtrace.Tracer
}

// AttachTracer wires an event tracer into the memory system and its
// subcomponents (nil detaches). Attach before the first cycle; attaching
// mid-run yields a trace with a truncated prefix but does not perturb the
// simulation.
func (ms *MemSystem) AttachTracer(tr *simtrace.Tracer) {
	ms.tr = tr
	ms.dtlb.AttachTracer(tr)
	if ms.cdp != nil {
		ms.cdp.AttachTracer(tr)
	}
}

// NewMemSystem builds the memory hierarchy for cfg over the given address
// space.
func NewMemSystem(cfg *Config, space *mem.AddressSpace, st *stats.Counters, mptu *stats.MPTUSeries) *MemSystem {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	ms := &MemSystem{
		cfg:          cfg,
		space:        space,
		l1:           cache.New(cfg.L1),
		l2:           cache.New(cfg.L2),
		dtlb:         tlb.New(cfg.TLB),
		fsb:          bus.NewBus(cfg.BusLatency, cfg.BusOccupancy),
		l2q:          bus.NewArbiter("l2", cfg.L2QueueSize),
		busq:         bus.NewArbiter("bus", cfg.BusQueueSize),
		inflight:     make(map[uint32]*bus.Request),
		strideRecent: make(map[uint32]bool),
		injLCG:       0x2545_F491,
		lastInject:   -1,
		st:           st,
		mptu:         mptu,
	}
	if cfg.Stride != nil {
		ms.stride = prefetch.NewStride(*cfg.Stride)
		ms.ports = append(ms.ports, enginePort{eng: ms.stride, class: bus.ClassStride})
	}
	if cfg.Content != nil {
		ms.cdp = core.New(*cfg.Content)
	}
	if cfg.Markov != nil {
		ms.mkv = markov.New(*cfg.Markov)
		ms.ports = append(ms.ports, enginePort{eng: ms.mkv, class: bus.ClassMarkov})
	}
	if cfg.Engine != "" {
		// Validate (above) already proved the spec builds a miss-stream
		// engine. Zoo entrants issue at Markov arbitration rank and are
		// accounted under the markov prefetch source: adding a bus class
		// and a cache source per entrant would grow every per-source
		// report table (and its goldens) for no modelled difference.
		ms.aux = registry.MustBuild(cfg.Engine)
		ms.ports = append(ms.ports, enginePort{eng: ms.aux, class: bus.ClassMarkov})
	}
	ms.engBuf = make([]uint32, 0, 16)
	ms.sched.ms = ms
	return ms
}

// enginePort binds a zoo engine to the bus class its predictions issue at.
type enginePort struct {
	eng   prefetch.Prefetcher
	class bus.Class
}

// newRequest returns a zeroed request, recycling one retired by fillArrive
// or a squash when available.
func (ms *MemSystem) newRequest() *bus.Request {
	n := len(ms.reqFree)
	if n == 0 {
		return &bus.Request{}
	}
	req := ms.reqFree[n-1]
	ms.reqFree[n-1] = nil
	ms.reqFree = ms.reqFree[:n-1]
	*req = bus.Request{Waiters: req.Waiters[:0]}
	return req
}

// releaseRequest returns a dead request to the freelist. Callers must hold
// the only remaining reference: fillArrive (the request has left the
// queues, the inflight map, and the event heap) and the squash path (the
// arbiter removed it, and an unsquashable promoted request never reaches
// here because promotion makes it demand-class).
func (ms *MemSystem) releaseRequest(req *bus.Request) {
	for i := range req.Waiters {
		req.Waiters[i] = nil
	}
	ms.reqFree = append(ms.reqFree, req)
}

// Content returns the content prefetcher (nil if disabled); experiments use
// it for scanner-activity stats.
func (ms *MemSystem) Content() *core.Prefetcher { return ms.cdp }

// TLBStats exposes translation hit/miss counts.
func (ms *MemSystem) TLBStats() (hits, misses uint64) { return ms.dtlb.Stats() }

func lineBase(addr uint32) uint32 { return addr &^ uint32(LineSize-1) }

// Tick implements cpu.MemPort: process all memory events up to cycle.
func (ms *MemSystem) Tick(cycle int64) {
	if cycle > ms.now {
		ms.now = cycle
	}
	ms.sched.runUntil(cycle)
}

// NextEvent implements cpu.MemPort.
func (ms *MemSystem) NextEvent() int64 { return ms.sched.next() }

// reserveL2 serialises accesses through the single L2 port (Table 1: L2
// throughput one access per cycle) and returns the access's effective
// cycle. Rescan storms therefore delay other L2 work, which is the cost the
// paper attributes to reinforcement.
func (ms *MemSystem) reserveL2(at int64) int64 {
	if ms.l2PortFree < at {
		ms.l2PortFree = at
	}
	slot := ms.l2PortFree
	ms.l2PortFree++
	return slot
}

func srcOf(c bus.Class) cache.Source {
	switch c {
	case bus.ClassStride:
		return cache.SrcStride
	case bus.ClassContent:
		return cache.SrcContent
	case bus.ClassMarkov:
		return cache.SrcMarkov
	default:
		return cache.SrcDemand
	}
}

// ---------------------------------------------------------------------------
// Demand path

// Load implements cpu.MemPort. It runs once per retired load µop, so its
// allocation behaviour is policed: the hotalloc analyzer rejects obvious
// allocation sites and cmd/allocheck ratchets the compiler's escape
// decisions against allocheck.baseline.json.
//
// simlint:hotpath
func (ms *MemSystem) Load(cycle int64, va, pc uint32, done func(int64)) {
	if ms.tr.Enabled() {
		ms.tr.SetNow(cycle)
	}
	ms.st.DemandLoads++
	if l := ms.l1.Lookup(va, true); l != nil {
		ms.st.L1Hits++
		done(cycle + ms.cfg.L1Lat)
		return
	}
	ms.st.L1Misses++
	strideIssued := ms.observeL1Miss(cycle, pc, va)
	if pa, ok := ms.dtlb.Lookup(va); ok {
		// TLB hit: continue synchronously without building the walk
		// continuation (which would otherwise be allocated on every L1
		// miss just in case the slow path needed it).
		ms.l2Access(cycle, pa, va, done, strideIssued, false)
		return
	}
	//simlint:allow hotalloc -- walk continuation only exists on a TLB miss (slow path); see allocheck.baseline.json
	ms.walk(cycle, va, false, func(at int64, pa uint32, ok bool) {
		if !ok {
			// Demand access to an unmapped page: return junk after an
			// L2-latency delay. Valid traces never hit this path.
			done(at + ms.cfg.L2Lat)
			return
		}
		ms.l2Access(at, pa, va, done, strideIssued, false)
	})
}

// Store implements cpu.MemPort. Stores are committed (post-retirement), so
// nothing waits on them except the store-buffer slot. Runs once per retired
// store µop; allocation-policed like Load.
//
// simlint:hotpath
func (ms *MemSystem) Store(cycle int64, va, pc uint32, done func(int64)) {
	if ms.tr.Enabled() {
		ms.tr.SetNow(cycle)
	}
	if l := ms.l1.Lookup(va, true); l != nil {
		l.Dirty = true
		done(cycle + ms.cfg.L1Lat)
		return
	}
	strideIssued := ms.observeL1Miss(cycle, pc, va)
	if pa, ok := ms.dtlb.Lookup(va); ok {
		ms.l2Access(cycle, pa, va, done, strideIssued, true)
		return
	}
	//simlint:allow hotalloc -- walk continuation only exists on a TLB miss (slow path); see allocheck.baseline.json
	ms.walk(cycle, va, false, func(at int64, pa uint32, ok bool) {
		if !ok {
			done(at + ms.cfg.L2Lat)
			return
		}
		ms.l2Access(at, pa, va, done, strideIssued, true)
	})
}

// observeL1Miss drives every L1-stream engine on one L1 miss and issues
// their predictions. It reports whether any prefetch entered the memory
// system for this reference (the blocking condition later engines see as
// PriorIssued — the paper's stride-blocks-Markov rule).
func (ms *MemSystem) observeL1Miss(cycle int64, pc, va uint32) bool {
	issued := false
	for i := range ms.ports {
		p := &ms.ports[i]
		if p.eng.Stream() != prefetch.StreamL1 {
			continue
		}
		preds := p.eng.Observe(prefetch.Event{PC: pc, VA: va, PriorIssued: issued}, ms.engBuf[:0])
		for _, pva := range preds {
			if ms.issuePrediction(cycle, pva, p) {
				issued = true
			}
		}
		ms.engBuf = preds[:0]
	}
	return issued
}

// observeL2Miss drives every L2-stream engine on one UL2 demand miss (line
// granularity). priorIssued seeds the precedence chain with the L1-stream
// outcome; each engine that issues blocks the ones after it.
func (ms *MemSystem) observeL2Miss(slot int64, va uint32, priorIssued bool) {
	prior := priorIssued
	for i := range ms.ports {
		p := &ms.ports[i]
		if p.eng.Stream() != prefetch.StreamL2 {
			continue
		}
		preds := p.eng.Observe(prefetch.Event{VA: lineBase(va), PriorIssued: prior}, ms.engBuf[:0])
		for _, lv := range preds {
			if ms.issuePrediction(slot, lv, p) {
				prior = true
			}
		}
		ms.engBuf = preds[:0]
	}
}

// issuePrediction translates one predicted virtual address per the
// engine's declared mode and enqueues it at the port's bus class. TLB-mode
// predictions whose page is not resident are dropped (no speculative walk
// for miss-stream engines); direct-mode predictions consult the software
// page map and drop unmapped lines. Reports whether the request entered
// the memory system.
func (ms *MemSystem) issuePrediction(at int64, pva uint32, p *enginePort) bool {
	var pa uint32
	var ok bool
	if p.eng.Translate() == prefetch.TranslateTLB {
		pa, ok = ms.dtlb.Lookup(pva)
	} else {
		pa, ok = ms.space.Translate(pva)
	}
	if !ok {
		ms.st.PrefDroppedUnmapped++
		return false
	}
	if p.class == bus.ClassStride {
		ms.noteStrideLine(lineBase(pa))
	}
	return ms.enqueuePrefetch(at, pa, pva, pva, p.class, 0, false)
}

// noteStrideLine records a stride-requested physical line for the
// adjusted-metric overlap test.
func (ms *MemSystem) noteStrideLine(paBase uint32) {
	if ms.strideRecent[paBase] {
		return
	}
	ms.strideRecent[paBase] = true
	ms.strideFIFO = append(ms.strideFIFO, paBase)
	if len(ms.strideFIFO) > strideRecentCap {
		old := ms.strideFIFO[0]
		ms.strideFIFO = ms.strideFIFO[1:]
		delete(ms.strideRecent, old)
	}
}

// walk resolves va's translation by walking the page table; callers handle
// the DTLB lookup themselves (so the hot TLB-hit path can continue inline
// without constructing a continuation closure) and reach here only on a
// miss. cont receives the completion cycle, the physical address, and
// whether the page is mapped. speculative marks content-prefetch walks
// (accounted separately and charged to the prefetcher, not the demand
// stream).
func (ms *MemSystem) walk(cycle int64, va uint32, speculative bool, cont func(at int64, pa uint32, ok bool)) {
	if speculative {
		ms.st.CDPWalks++
	} else {
		ms.st.Walks++
	}
	if ms.tr.Enabled() {
		spec := uint64(0)
		if speculative {
			spec = 1
		}
		ms.tr.Emit(simtrace.Event{
			Kind: simtrace.KindWalk, Comp: simtrace.CompTLB,
			Cycle: cycle, Addr: va, Arg: spec,
		})
	}
	refs, frame, ok := ms.space.Walk(va)
	// First level: page-directory entry.
	ms.ptRead(cycle, refs[0].Addr, func(at1 int64) {
		if refs[0].Value&mem.PresentBit == 0 {
			cont(at1, 0, false)
			return
		}
		// Second level: page-table entry.
		ms.ptRead(at1, refs[1].Addr, func(at2 int64) {
			if !ok {
				cont(at2, 0, false)
				return
			}
			if speculative {
				ms.dtlb.InsertCold(va, frame)
			} else {
				ms.dtlb.Insert(va, frame)
			}
			cont(at2, frame<<mem.PageShift|va&mem.PageMask, true)
		})
	})
}

// ptRead fetches one page-table line through the L2. Page-walk fills bypass
// the content scanner (Section 3.5: page tables are full of pointers).
func (ms *MemSystem) ptRead(cycle int64, pa uint32, cont func(at int64)) {
	slot := ms.reserveL2(cycle)
	if ms.l2.Lookup(pa, true) != nil {
		cont(slot + ms.cfg.L2Lat)
		return
	}
	paBase := lineBase(pa)
	if req := ms.inflight[paBase]; req != nil {
		req.Waiters = append(req.Waiters, cont)
		return
	}
	ms.reqID++
	req := ms.newRequest()
	req.ID, req.PABase, req.VABase, req.TrigVA = ms.reqID, paBase, paBase, pa
	req.Class, req.PageWalk, req.Enqueued = bus.ClassDemand, true, slot
	req.Waiters = append(req.Waiters, cont)
	ms.enqueueDemandReq(slot, req)
}

// l2Access handles a demand load or store at the (physically indexed) L2.
func (ms *MemSystem) l2Access(at int64, pa, va uint32, done func(int64), strideIssued, isStore bool) {
	slot := ms.reserveL2(at)
	if l := ms.l2.Lookup(pa, true); l != nil {
		if !isStore {
			ms.st.L2Hits++
		}
		if isStore {
			l.Dirty = true
		}
		ms.consumeHit(l, va, slot, isStore)
		ms.l1.Fill(va, cache.Line{Source: cache.SrcDemand, VA: lineBase(va), Dirty: isStore})
		done(slot + ms.cfg.L2Lat)
		return
	}
	// UL2 miss.
	if !isStore {
		ms.st.L2Misses++
		ms.mptu.Record(ms.st.RetiredUops)
	}
	ms.observeL2Miss(slot, va, strideIssued)
	paBase := lineBase(pa)
	if req := ms.inflight[paBase]; req != nil {
		// A matching transaction is in flight. If it is a prefetch, the
		// demand promotes it to demand priority and depth (positive
		// reinforcement; its latency was partially masked).
		if req.Class.IsPrefetch() {
			src := srcOf(req.Class)
			if !req.DemandWaited && !isStore {
				if ms.tr.Enabled() {
					ms.tr.Emit(simtrace.Event{
						Kind: simtrace.KindPartialHit, Comp: simtrace.CompCache,
						Cycle: slot, Addr: va, Chain: req.Chain,
						Depth: int16(req.Depth), Class: uint8(req.Class),
					})
				}
				ms.st.PartialHits[src]++
				ms.st.PrefUseful[src]++
				if req.Overlap {
					ms.st.CDPOverlapUseful++
				}
				if src == cache.SrcContent && ms.cdp != nil {
					ms.cdp.ResolvePrefetch(true)
					total := req.Arrive - req.Enqueued
					if req.Arrive == 0 {
						// Not yet granted: the demand waits the whole
						// round trip minus queue time already served.
						total = ms.cfg.BusLatency
					}
					elapsed := slot - req.Enqueued
					if total > 0 {
						ms.st.RecordMask(float64(elapsed) / float64(total))
					}
				}
			}
			req.DemandWaited = true
			req.Class = bus.ClassDemand
			req.Depth = 0
		}
		req.Waiters = append(req.Waiters, done)
		return
	}
	if !isStore {
		ms.st.MissNoPF++
	}
	ms.reqID++
	req := ms.newRequest()
	req.ID, req.PABase, req.VABase, req.TrigVA = ms.reqID, paBase, lineBase(va), va
	req.Class, req.IsStore, req.Enqueued = bus.ClassDemand, isStore, slot
	req.Waiters = append(req.Waiters, done)
	ms.enqueueDemandReq(slot, req)
}

// consumeHit applies first-touch timeliness classification and the
// reinforcement rules to an L2 hit.
func (ms *MemSystem) consumeHit(l *cache.Line, va uint32, slot int64, isStore bool) {
	if l.Prefetched {
		if ms.tr.Enabled() {
			ms.tr.Emit(simtrace.Event{
				Kind: simtrace.KindDemandHit, Comp: simtrace.CompCache,
				Cycle: slot, Addr: va, Chain: l.Chain,
				Depth: int16(l.Depth), Class: uint8(l.Source),
			})
		}
		src := l.Source
		ms.st.PrefUseful[src]++
		if !isStore {
			ms.st.FullHits[src]++
		}
		if l.Overlap {
			ms.st.CDPOverlapUseful++
		}
		if src == cache.SrcContent && ms.cdp != nil {
			ms.cdp.ResolvePrefetch(true)
			ms.st.RecordMask(1.0)
		}
		l.Prefetched = false
	}
	if ms.cdp != nil && l.Depth > 0 {
		nd, rescan := ms.cdp.OnCacheHit(int(l.Depth), 0)
		if nd != int(l.Depth) {
			l.Depth = uint8(nd)
			ms.st.PromotedDepths++
		}
		if rescan {
			ms.st.Rescans++
			if ms.tr.Enabled() {
				ms.tr.Emit(simtrace.Event{
					Kind: simtrace.KindRescan, Comp: simtrace.CompCDP,
					Cycle: slot, Addr: l.VA, Chain: l.Chain, Depth: int16(nd),
				})
			}
			// The rescan consumes its own L2 port slot shortly after
			// the hit (read port pressure). The event snapshots the
			// line's VA, promoted depth, and chain at schedule time.
			rs := ms.reserveL2(slot + ms.cfg.L2Lat)
			ms.sched.schedule(rs, event{kind: evRescan, hitVA: va, depth: int32(nd), lineVA: l.VA, chain: l.Chain})
		}
	}
}

// ---------------------------------------------------------------------------
// Prefetch issue

// scanAndIssue runs the content scanner over the line at lineVA and issues
// the resulting candidates. chain is the content chain of the fill that
// triggered the scan (0 for demand fills: each candidate issued from a
// non-speculative fill starts a fresh chain in enqueuePrefetch2).
func (ms *MemSystem) scanAndIssue(at int64, trigVA uint32, depth int, lineVA uint32, chain uint64) {
	if ms.cdp == nil {
		return
	}
	if ms.tr.Enabled() {
		// Stamp before the scan so the candidate events OnFill emits
		// carry this cycle.
		ms.tr.SetNow(at)
	}
	ms.space.Img.ReadLineInto(lineVA, ms.lineBuf[:])
	cands := ms.cdp.OnFill(trigVA, depth, lineVA, ms.lineBuf[:])
	if ms.tr.Enabled() {
		ms.tr.Emit(simtrace.Event{
			Kind: simtrace.KindScan, Comp: simtrace.CompCDP,
			Cycle: at, Addr: lineVA, Addr2: trigVA,
			Chain: chain, Depth: int16(depth), Arg: uint64(len(cands)),
		})
	}
	for _, cand := range cands {
		ms.issueContentPrefetch(at, cand, chain)
	}
}

// issueContentPrefetch translates and enqueues one content candidate. A
// translation miss triggers a speculative page walk (the TLB-prefetching
// side effect of Section 4.2.2); an unmapped candidate — a data value that
// happened to look like a pointer — is dropped. Runs once per candidate on
// every scanned fill, so it is allocation-policed.
//
// simlint:hotpath
func (ms *MemSystem) issueContentPrefetch(at int64, cand core.Candidate, chain uint64) {
	if pa, ok := ms.dtlb.Lookup(cand.VA); ok {
		ms.finishContentPrefetch(at, pa, cand, chain)
		return
	}
	ms.st.CDPNeedWalk++
	//simlint:allow hotalloc -- speculative walk continuation only exists on a TLB miss (slow path); see allocheck.baseline.json
	ms.walk(at, cand.VA, true, func(at2 int64, pa uint32, ok bool) {
		if !ok {
			ms.st.PrefDroppedUnmapped++
			return
		}
		ms.finishContentPrefetch(at2, pa, cand, chain)
	})
}

// finishContentPrefetch enqueues a translated content candidate, tagging it
// with the stride-overlap bit the adjusted metrics need.
func (ms *MemSystem) finishContentPrefetch(at int64, pa uint32, cand core.Candidate, chain uint64) {
	overlap := ms.strideRecent[lineBase(pa)]
	if ms.enqueuePrefetch2(at, pa, cand.VA, cand.Pointer, bus.ClassContent, cand.Depth, overlap, cand.Widened, chain) && overlap {
		ms.st.CDPOverlapIssued++
	}
}

// enqueuePrefetch applies the drop rules (already present, already in
// flight, queue full) and enqueues a prefetch. Reports whether the request
// entered the memory system.
func (ms *MemSystem) enqueuePrefetch(at int64, pa, va, trigVA uint32, class bus.Class, depth int, overlap bool) bool {
	return ms.enqueuePrefetch2(at, pa, va, trigVA, class, depth, overlap, false, 0)
}

// enqueuePrefetch2 additionally marks widened (next-/prev-line) requests,
// whose fills are not scanned, and threads the content chain ID: a content
// prefetch arriving with chain 0 (issued off a non-speculative fill)
// starts a fresh chain; deeper issues inherit their trigger's.
func (ms *MemSystem) enqueuePrefetch2(at int64, pa, va, trigVA uint32, class bus.Class, depth int, overlap, widened bool, chain uint64) bool {
	if ms.l2.Lookup(pa, false) != nil {
		ms.st.PrefDroppedPresent++
		return false
	}
	paBase := lineBase(pa)
	if ms.inflight[paBase] != nil {
		ms.st.PrefDroppedInflight++
		return false
	}
	if ms.l2q.Full() {
		ms.st.PrefDroppedQueue++
		return false
	}
	if class == bus.ClassContent {
		if chain == 0 {
			ms.chainSeq++
			chain = ms.chainSeq
			ms.st.CDPChains++
		}
		b := depth
		if b >= stats.MaxChainDepth {
			b = stats.MaxChainDepth - 1
		}
		if b < 0 {
			b = 0
		}
		ms.st.CDPIssuedAtDepth[b]++
	} else {
		chain = 0
	}
	ms.reqID++
	req := ms.newRequest()
	req.ID, req.PABase, req.VABase, req.TrigVA = ms.reqID, paBase, lineBase(va), trigVA
	req.Class, req.Depth, req.Overlap, req.Widened, req.Enqueued = class, depth, overlap, widened, at
	req.Chain = chain
	if ms.tr.Enabled() {
		ms.tr.Emit(simtrace.Event{
			Kind: simtrace.KindIssue, Comp: simtrace.CompBus,
			Cycle: at, Addr: req.VABase, Addr2: paBase,
			Chain: chain, Depth: int16(depth), Class: uint8(class),
		})
	}
	ms.l2q.Enqueue(req)
	ms.inflight[paBase] = req
	ms.st.PrefIssued[srcOf(class)]++
	ms.pump(at)
	return true
}

// enqueueDemandReq inserts a demand-class request, squashing the
// lowest-priority queued prefetch when the L2 queue is full.
func (ms *MemSystem) enqueueDemandReq(at int64, req *bus.Request) {
	squashed, ok := ms.l2q.EnqueueDemand(req)
	if squashed != nil {
		delete(ms.inflight, squashed.PABase)
		ms.st.PrefSquashed++
		ms.releaseRequest(squashed)
	}
	if !ok {
		// The L2 queue is full of demand requests — with a 128-entry
		// queue and a 48-entry load buffer this cannot happen; treat
		// as a model invariant violation.
		panic(fmt.Sprintf("sim: L2 queue full of demands at cycle %d", at))
	}
	ms.inflight[req.PABase] = req
	ms.pump(at)
}

// ---------------------------------------------------------------------------
// Bus scheduling

// pump moves requests from the L2 queue into the bus queue and starts a
// transfer if the bus is idle. If work remains while the bus is busy, a
// follow-up pump is scheduled for the bus-free time, so no request can be
// stranded (write-backs advance the bus clock without their own pump).
func (ms *MemSystem) pump(at int64) {
	if debugInvariants {
		ms.checkInvariants(at)
	}
	if ms.nextPumpAt == at {
		ms.nextPumpAt = 0
	}
	for !ms.busq.Full() && ms.l2q.Len() > 0 {
		ms.busq.Enqueue(ms.l2q.PopBest())
	}
	if ms.fsb.Idle(at) {
		ms.grant(at)
	}
	if (ms.busq.Len() > 0 || ms.l2q.Len() > 0) && !ms.fsb.Idle(at) {
		ms.schedulePump(ms.fsb.FreeAt())
	}
}

// schedulePump arms a pump event at cycle t unless an earlier or equal one
// is already pending.
func (ms *MemSystem) schedulePump(t int64) {
	if ms.nextPumpAt != 0 && ms.nextPumpAt <= t {
		return
	}
	ms.nextPumpAt = t
	ms.sched.schedule(t, event{kind: evPump})
}

// grant starts the highest-priority transfer at cycle at, or injects a bad
// prefetch when the limit study is active and the queues are empty.
func (ms *MemSystem) grant(at int64) {
	req := ms.busq.PopBest()
	if req == nil && ms.l2q.Len() > 0 {
		req = ms.l2q.PopBest()
	}
	if req == nil {
		if ms.cfg.InjectBadPrefetches && at != ms.lastInject {
			ms.lastInject = at
			req = ms.makeInjectedRequest()
		} else {
			return
		}
	}
	start, arrive := ms.fsb.Grant(at)
	req.Granted = start
	req.Arrive = arrive
	if debugInvariants && !req.Injected {
		ms.flying++
	}
	ms.sched.schedule(arrive, event{kind: evFill, req: req})
	ms.schedulePump(ms.fsb.FreeAt())
}

// makeInjectedRequest fabricates a pollution prefetch to a pseudo-random
// physical line (Section 3.5's limit study).
func (ms *MemSystem) makeInjectedRequest() *bus.Request {
	ms.injLCG = ms.injLCG*1664525 + 1013904223
	pa := lineBase(ms.injLCG)
	ms.reqID++
	ms.st.InjectedPrefetches++
	req := ms.newRequest()
	req.ID, req.PABase, req.VABase, req.TrigVA = ms.reqID, pa, pa, pa
	req.Class, req.Depth, req.Injected = bus.ClassContent, 3, true
	return req
}

// fillArrive completes one bus transaction: fill the L2 (and the L1 for
// demands), wake waiters, and hand a copy of the line to the content
// scanner.
func (ms *MemSystem) fillArrive(at int64, req *bus.Request) {
	delete(ms.inflight, req.PABase)
	if debugInvariants && !req.Injected {
		ms.flying--
	}
	fillSlot := ms.reserveL2(at)
	_ = fillSlot // the fill consumes an L2 port slot; data is usable at `at`

	src := srcOf(req.Class)
	meta := cache.Line{
		Source:     src,
		Prefetched: req.Class.IsPrefetch(),
		Depth:      uint8(req.Depth),
		VA:         req.VABase,
		Dirty:      req.IsStore,
		Overlap:    req.Overlap,
		Chain:      req.Chain,
	}
	if req.PageWalk {
		meta = cache.Line{Source: cache.SrcDemand, VA: req.VABase}
	}
	if ms.tr.Enabled() {
		ms.tr.Emit(simtrace.Event{
			Kind: simtrace.KindFill, Comp: simtrace.CompCache,
			Cycle: at, Addr: req.VABase, Addr2: req.PABase,
			Chain: req.Chain, Depth: int16(req.Depth), Class: uint8(req.Class),
		})
	}
	evicted := ms.l2.Fill(req.PABase, meta)
	if evicted.Valid {
		if ms.tr.Enabled() {
			unused := uint64(0)
			if evicted.Prefetched {
				unused = 1
			}
			ms.tr.Emit(simtrace.Event{
				Kind: simtrace.KindEvict, Comp: simtrace.CompCache,
				Cycle: at, Addr: evicted.VA, Chain: evicted.Chain,
				Depth: int16(evicted.Depth), Class: uint8(evicted.Source), Arg: unused,
			})
		}
		if evicted.Prefetched {
			ms.st.PrefEvictedUnused[evicted.Source]++
			if evicted.Source == cache.SrcContent && ms.cdp != nil {
				ms.cdp.ResolvePrefetch(false)
			}
		}
		if evicted.Dirty {
			// Write-back consumes bus bandwidth but nothing waits on it.
			ms.fsb.Grant(at)
			ms.schedulePump(ms.fsb.FreeAt())
		}
	}
	if req.Class == bus.ClassDemand && !req.PageWalk {
		ms.l1.Fill(req.VABase, cache.Line{Source: cache.SrcDemand, VA: req.VABase, Dirty: req.IsStore})
	}
	for _, w := range req.Waiters {
		w(at)
	}
	if ms.cdp != nil && !req.PageWalk && !req.Injected && !req.Widened {
		ms.scanAndIssue(at, req.TrigVA, req.Depth, req.VABase, req.Chain)
	}
	ms.releaseRequest(req)
	ms.pump(at)
}
