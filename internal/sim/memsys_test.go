package sim

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/markov"
	"repro/internal/mem"
	"repro/internal/trace"
)

// buildLoop traces a repeating miss sequence over a fixed set of scattered
// lines: ideal Markov training material.
func buildLoop(t *testing.T, lines, passes, work int) *trace.Checkpoint {
	t.Helper()
	as := mem.NewAddressSpace()
	alloc := heap.NewAllocator(as, 0x1000_0000, 0x1100_0000)
	rng := rand.New(rand.NewSource(11))
	addrs := make([]uint32, lines)
	for i := range addrs {
		addrs[i] = alloc.Alloc(64, 64)
	}
	rng.Shuffle(lines, func(i, j int) { addrs[i], addrs[j] = addrs[j], addrs[i] })
	b := trace.NewBuilder()
	for p := 0; p < passes; p++ {
		for i, a := range addrs {
			// Serially dependent loads: the repeating miss sequence is
			// latency-bound, so a correct successor prediction saves a
			// full memory round trip.
			b.Load(0x300, 1, 1, a)
			for w := 0; w < work; w++ {
				b.Int(0x310+uint32(w%8)*4, 2, 1, trace.NoReg)
			}
			b.Branch(0x330, 2, i+1 < lines)
		}
	}
	return &trace.Checkpoint{Name: "loop", Space: as, Trace: b.Trace()}
}

func TestMarkovLearnsRepeatingMissSequence(t *testing.T) {
	// 40K lines (2.5 MB) > 1 MB L2: every pass misses; the sequence
	// repeats, which is exactly what a 1-history Markov table captures.
	ck := buildLoop(t, 40_000, 3, 8)
	base := Run(ck, testConfig())
	mk := testConfig()
	mk.Markov = &markov.Config{}
	mk.Name = "markov"
	mkRes := Run(ck, mk)
	if mkRes.Counters.PrefIssued[cache.SrcMarkov] == 0 {
		t.Fatal("markov issued nothing on a repeating miss sequence")
	}
	if mkRes.Counters.UsefulPrefetches(cache.SrcMarkov) == 0 {
		t.Fatal("no markov prefetch was useful")
	}
	sp := mkRes.SpeedupOver(base)
	t.Logf("markov speedup %.3f (issued %d, useful %d)", sp,
		mkRes.Counters.PrefIssued[cache.SrcMarkov],
		mkRes.Counters.UsefulPrefetches(cache.SrcMarkov))
	if sp < 1.01 {
		t.Fatalf("markov speedup %.3f on its ideal workload", sp)
	}
}

func TestMarkovBoundedTableWorsens(t *testing.T) {
	ck := buildLoop(t, 40_000, 3, 8)
	big := testConfig()
	big.Markov = &markov.Config{}
	tiny := testConfig()
	tiny.Markov = &markov.Config{MaxEntries: 256}
	rBig := Run(ck, big)
	rTiny := Run(ck, tiny)
	if rTiny.Counters.UsefulPrefetches(cache.SrcMarkov) >= rBig.Counters.UsefulPrefetches(cache.SrcMarkov) {
		t.Fatalf("256-entry STAB as useful as unbounded: %d vs %d",
			rTiny.Counters.UsefulPrefetches(cache.SrcMarkov),
			rBig.Counters.UsefulPrefetches(cache.SrcMarkov))
	}
}

func TestPageWalkFillsNotScanned(t *testing.T) {
	// A TLB-thrashing random-page workload forces many walks; the
	// page-table lines are dense with pointers, but the scanner must
	// never see them. With CDP enabled and *no pointer data at all*,
	// any content prefetch would have to come from scanned PT fills.
	as := mem.NewAddressSpace()
	alloc := heap.NewAllocator(as, 0x1000_0000, 0x1100_0000)
	arr := heap.BuildArray(alloc, rand.New(rand.NewSource(3)), 40_000, 64, heap.Fill{})
	// Zero fill: no words in the data anywhere look like pointers.
	b := trace.NewBuilder()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 30_000; i++ {
		b.Load(0x400, 1, trace.NoReg, arr.Elem(rng.Intn(arr.Elems)))
		b.Int(0x404, 2, 1, trace.NoReg)
	}
	ck := &trace.Checkpoint{Name: "walks", Space: as, Trace: b.Trace()}
	res := Run(ck, testConfig().WithContent(core.DefaultConfig))
	if res.Counters.Walks == 0 {
		t.Fatal("workload did not exercise the walker")
	}
	if got := res.Counters.PrefIssued[cache.SrcContent]; got != 0 {
		t.Fatalf("%d content prefetches from pointer-free data: PT lines were scanned", got)
	}
}

func TestRescanSlackHalvesRescans(t *testing.T) {
	ck := buildChase(t, 24_000, 2, 4, true)
	slack1 := core.DefaultConfig
	slack1.RescanSlack = 1
	slack2 := core.DefaultConfig
	slack2.RescanSlack = 2 // Figure 4(c)
	r1 := Run(ck, testConfig().WithContent(slack1))
	r2 := Run(ck, testConfig().WithContent(slack2))
	if r2.Counters.Rescans >= r1.Counters.Rescans {
		t.Fatalf("slack 2 rescans %d >= slack 1 rescans %d",
			r2.Counters.Rescans, r1.Counters.Rescans)
	}
	t.Logf("rescans: slack1 %d, slack2 %d", r1.Counters.Rescans, r2.Counters.Rescans)
}

func TestPrevLineConfigRuns(t *testing.T) {
	ck := buildChase(t, 8_000, 1, 4, true)
	cfg := core.DefaultConfig
	cfg.PrevLines = 1
	cfg.NextLines = 1
	res := Run(ck, testConfig().WithContent(cfg))
	if res.Counters.PrefIssued[cache.SrcContent] == 0 {
		t.Fatal("p1.n1 configuration issued nothing")
	}
}

func TestRestoredCheckpointSimulatesIdentically(t *testing.T) {
	ck := buildChase(t, 6_000, 1, 4, true)
	var buf bytes.Buffer
	if _, err := ck.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := trace.ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig().WithContent(core.DefaultConfig)
	a := Run(ck, cfg)
	b := Run(restored, cfg)
	if a.Core.Cycles != b.Core.Cycles {
		t.Fatalf("restored checkpoint diverged: %d vs %d cycles", a.Core.Cycles, b.Core.Cycles)
	}
	if a.Counters.L2Misses != b.Counters.L2Misses {
		t.Fatalf("restored checkpoint miss count diverged: %d vs %d",
			a.Counters.L2Misses, b.Counters.L2Misses)
	}
}

func TestStoreHeavyWorkloadWritesBack(t *testing.T) {
	// Stores dirty lines; evictions must generate write-back traffic
	// without deadlocking the bus pump.
	as := mem.NewAddressSpace()
	alloc := heap.NewAllocator(as, 0x1000_0000, 0x1100_0000)
	arr := heap.BuildArray(alloc, rand.New(rand.NewSource(5)), 40_000, 64, heap.Fill{})
	b := trace.NewBuilder()
	for p := 0; p < 2; p++ {
		for i := 0; i < arr.Elems; i++ {
			b.Store(0x500, 1, trace.NoReg, arr.Elem(i))
			b.Int(0x504, 1, 1, trace.NoReg)
		}
	}
	ck := &trace.Checkpoint{Name: "stores", Space: as, Trace: b.Trace()}
	res := Run(ck, testConfig())
	if res.Core.Retired != uint64(ck.Trace.Len()) {
		t.Fatalf("store-heavy run incomplete: %d of %d", res.Core.Retired, ck.Trace.Len())
	}
	if res.Counters.RetiredStores == 0 {
		t.Fatal("no stores retired")
	}
}

func TestDemandSquashAccounting(t *testing.T) {
	// A content-heavy run on a small L2 queue must squash prefetches in
	// favour of demands rather than stall them.
	ck := buildChase(t, 24_000, 1, 4, true)
	cfg := testConfig().WithContent(core.DefaultConfig)
	cfg.L2QueueSize = 8
	cfg.BusQueueSize = 4
	res := Run(ck, cfg)
	if res.Core.Retired != uint64(ck.Trace.Len()) {
		t.Fatal("run incomplete under tiny queues")
	}
	if res.Counters.PrefSquashed == 0 && res.Counters.PrefDroppedQueue == 0 {
		t.Fatal("tiny queues produced no squashes or queue drops")
	}
}

func TestMarkovStridePrecedence(t *testing.T) {
	// With both stride and markov active on a strided workload, stride's
	// precedence must suppress markov issues for stride-covered misses.
	ck := buildStrideWalk(t, 30_000, 2)
	cfg := testConfig()
	cfg.Markov = &markov.Config{}
	res := Run(ck, cfg)
	str := res.Counters.PrefIssued[cache.SrcStride]
	mkv := res.Counters.PrefIssued[cache.SrcMarkov]
	t.Logf("stride issued %d, markov issued %d", str, mkv)
	if str == 0 {
		t.Fatal("stride idle on strided workload")
	}
	if mkv > str {
		t.Fatalf("markov (%d) out-issued stride (%d) despite precedence", mkv, str)
	}
}
