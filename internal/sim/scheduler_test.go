package sim

import (
	"math/rand"
	"testing"
)

// TestSchedulerPopOrderProperty drives random push/pop interleavings through
// the hand-rolled event heap and checks the determinism contract: events pop
// in strictly increasing (at, seq) order, regardless of arrival order. Since
// schedule clamps cycles to the tracked now, every event pushed after a pop
// sorts at or after that pop, so the property must hold across the whole
// interleaved sequence — this is exactly what makes the simulation
// independent of the heap's internal layout.
func TestSchedulerPopOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		var s scheduler
		var lastAt int64 = -1
		var lastSeq uint64
		pushed, popped := 0, 0
		checkPop := func() {
			e := s.pop()
			if e.at > s.now {
				s.now = e.at
			}
			if e.at < lastAt || (e.at == lastAt && e.seq <= lastSeq) {
				t.Fatalf("trial %d: popped (at=%d seq=%d) after (at=%d seq=%d)",
					trial, e.at, e.seq, lastAt, lastSeq)
			}
			lastAt, lastSeq = e.at, e.seq
			popped++
		}
		for op := 0; op < 1000; op++ {
			if len(s.h) == 0 || rng.Intn(3) != 0 {
				// Cycles cluster around now with occasional far jumps so
				// ties and deep heaps both occur.
				at := s.now + int64(rng.Intn(8))
				if rng.Intn(10) == 0 {
					at += int64(rng.Intn(1000))
				}
				s.schedule(at, event{kind: evPump})
				pushed++
			} else {
				checkPop()
			}
		}
		for len(s.h) > 0 {
			checkPop()
		}
		if pushed != popped {
			t.Fatalf("trial %d: pushed %d events, popped %d", trial, pushed, popped)
		}
	}
}

// TestSchedulerSeqBreaksTies pins the FIFO ordering of same-cycle events:
// pushing many events at one cycle must pop them in scheduling order.
func TestSchedulerSeqBreaksTies(t *testing.T) {
	var s scheduler
	const n = 64
	for i := 0; i < n; i++ {
		s.schedule(10, event{kind: evRescan, hitVA: uint32(i)})
	}
	for i := 0; i < n; i++ {
		e := s.pop()
		if e.hitVA != uint32(i) {
			t.Fatalf("pop %d returned event scheduled at position %d", i, e.hitVA)
		}
	}
}
