package sim

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/cpu"
	"repro/internal/simtrace"
	"repro/internal/stats"
	"repro/internal/trace"
)

// runs counts completed simulations process-wide (telemetry for cmd/bench's
// sims/sec column; see internal/benchio).
var runs atomic.Uint64

// Runs reports how many simulations this process has completed.
func Runs() uint64 { return runs.Load() }

// Result is one complete simulation outcome.
type Result struct {
	Config   Config
	Core     cpu.Result
	Counters *stats.Counters
	MPTU     *stats.MPTUSeries

	// MeasuredCycles and MeasuredUops cover the post-warm-up region only
	// (the paper's measurement methodology, Section 2.2).
	MeasuredCycles int64
	MeasuredUops   uint64

	// TLBHits/TLBMisses are lifetime translation counts.
	TLBHits   uint64
	TLBMisses uint64
}

// IPC is retired µops per cycle over the measured region.
func (r *Result) IPC() float64 {
	if r.MeasuredCycles == 0 {
		return 0
	}
	return float64(r.MeasuredUops) / float64(r.MeasuredCycles)
}

// SpeedupOver returns base's measured cycles divided by r's — the paper's
// speedup metric (relative to the stride-prefetcher baseline).
func (r *Result) SpeedupOver(base *Result) float64 {
	if r.MeasuredCycles == 0 {
		return 0
	}
	return float64(base.MeasuredCycles) / float64(r.MeasuredCycles)
}

func (r *Result) String() string {
	return fmt.Sprintf("result{%s: %d µops in %d cycles, IPC %.3f, L2 MPTU %.2f}",
		r.Config.Name, r.MeasuredUops, r.MeasuredCycles, r.IPC(),
		r.Counters.MPTUFor(r.MeasuredUops))
}

// RunContext is Run with cooperative cancellation at simulation granularity:
// it checks ctx once before starting and refuses to run when it is already
// cancelled. The inner event loop is deliberately not interrupted — a
// simulation that starts always finishes, which keeps every result
// byte-identical to Run and makes the cancellation boundary the natural
// unit callers (experiment sweeps, the cdpd job queue) reason about.
func RunContext(ctx context.Context, ck *trace.Checkpoint, cfg Config) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return Run(ck, cfg), nil
}

// Run simulates one checkpoint on one machine configuration.
func Run(ck *trace.Checkpoint, cfg Config) *Result {
	return RunTraced(ck, cfg, nil)
}

// RunTraced is Run with an event tracer attached (nil is exactly Run).
// Tracing observes the simulation without perturbing it: the result is
// byte-identical whether or not a tracer is attached.
func RunTraced(ck *trace.Checkpoint, cfg Config, tr *simtrace.Tracer) *Result {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	st := &stats.Counters{}
	mptu := stats.NewMPTUSeries(cfg.MPTUBucketOps)
	ms := NewMemSystem(&cfg, ck.Space, st, mptu)
	c := cpu.New(cfg.Core, st)
	if tr != nil {
		ms.AttachTracer(tr)
		c.AttachTracer(tr)
	}

	var warmCycle int64
	if cfg.WarmupOps > 0 {
		// The observer unsubscribes at the warm-up boundary so the
		// post-warm-up region (the measured bulk of the run) retires
		// with batched accounting and no per-µop callback.
		c.OnRetire = func(retired uint64, cycle int64) {
			if retired >= cfg.WarmupOps {
				warmCycle = cycle
				st.Reset(cycle)
				c.OnRetire = nil
			}
		}
	}
	coreRes := c.Run(ck.Trace, ms, cfg.MaxOps)
	st.Cycles = coreRes.Cycles
	st.WarmCycles = warmCycle

	hits, misses := ms.TLBStats()
	// Mirror the lifetime translation counts into the counter block so the
	// report emitter sees them (statsreg keeps the two in lockstep).
	st.TLBHits = hits
	st.TLBMisses = misses
	res := &Result{
		Config:         cfg,
		Core:           coreRes,
		Counters:       st,
		MPTU:           mptu,
		MeasuredCycles: coreRes.Cycles - warmCycle,
		MeasuredUops:   coreRes.Retired,
		TLBHits:        hits,
		TLBMisses:      misses,
	}
	if cfg.WarmupOps > 0 && coreRes.Retired > cfg.WarmupOps {
		res.MeasuredUops = coreRes.Retired - cfg.WarmupOps
	}
	runs.Add(1)
	return res
}
