package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/mem"
	"repro/internal/trace"
)

// buildChase materialises a scattered linked list inside one 16 MiB region
// (the prefetchable range of 8 compare bits) and traces `passes` traversals
// over it. With payload set, every node carries a pointer to a scattered
// payload block that is dereferenced and then steers a data-dependent
// branch — the pattern (fetch record, process it, decide) that gives the
// demand stream more than one memory round trip of work per node, letting
// the prefetch wave run ahead exactly as in the paper's workloads.
func buildChase(t *testing.T, nodes, passes, workPerNode int, payload bool) *trace.Checkpoint {
	t.Helper()
	as := mem.NewAddressSpace()
	alloc := heap.NewAllocator(as, 0x1000_0000, 0x1100_0000)
	rng := rand.New(rand.NewSource(7))
	l := heap.BuildList(alloc, rng, heap.ListSpec{
		Nodes: nodes, NodeSize: 64, NextOff: 0, Fill: heap.DefaultFill,
	})
	payloadOf := make(map[uint32]uint32, nodes)
	if payload {
		blocks := make([]uint32, nodes)
		for i := range blocks {
			blocks[i] = alloc.Alloc(64, 64)
			as.Img.Write32(blocks[i], rng.Uint32())
		}
		rng.Shuffle(len(blocks), func(i, j int) { blocks[i], blocks[j] = blocks[j], blocks[i] })
		for i, n := range l.Nodes {
			payloadOf[n] = blocks[i]
			as.Img.Write32(n+8, blocks[i])
		}
	}
	b := trace.NewBuilder()
	for p := 0; p < passes; p++ {
		cur := l.Head
		for cur != 0 {
			next := as.Img.Read32(cur)
			if payload {
				pb := payloadOf[cur]
				b.Load(0x104, 2, 1, cur+8) // r2 = node->payload
				b.Load(0x108, 3, 2, pb)    // r3 = *payload (second round trip)
				for w := 0; w < workPerNode; w++ {
					b.Int(0x120+uint32(w)*4, 3, 3, trace.NoReg)
				}
				// Data-dependent branch: resolves only after the payload
				// arrives, gating fetch of the next chain load on a
				// mispredict.
				b.Branch(0x160, 3, as.Img.Read32(pb)&1 == 1)
			} else {
				for w := 0; w < workPerNode; w++ {
					b.Int(0x120+uint32(w)*4, 2, 2, trace.NoReg)
				}
			}
			b.Load(0x100, 1, 1, cur) // r1 = node->next: the chase
			b.Branch(0x180, 1, next != 0)
			cur = next
		}
	}
	return &trace.Checkpoint{Name: "chase", Space: as, Trace: b.Trace()}
}

// buildStrideWalk traces sequential passes over a dense array: the workload
// the stride prefetcher owns.
func buildStrideWalk(t *testing.T, elems, passes int) *trace.Checkpoint {
	t.Helper()
	as := mem.NewAddressSpace()
	alloc := heap.NewAllocator(as, 0x1000_0000, 0x3000_0000)
	rng := rand.New(rand.NewSource(8))
	arr := heap.BuildArray(alloc, rng, elems, 64, heap.Fill{SmallInts: 1})
	b := trace.NewBuilder()
	for p := 0; p < passes; p++ {
		for i := 0; i < elems; i++ {
			b.Load(0x200, 1, trace.NoReg, arr.Elem(i))
			// Work on each element keeps the loop latency-bound rather
			// than bus-bandwidth-bound, so prefetch lead matters.
			for w := 0; w < 24; w++ {
				b.Int(0x210+uint32(w)*4, 2, 1, trace.NoReg)
			}
			b.Branch(0x208, 2, i+1 < elems)
		}
	}
	return &trace.Checkpoint{Name: "stride", Space: as, Trace: b.Trace()}
}

func testConfig() Config {
	cfg := Default()
	cfg.WarmupOps = 0
	cfg.MPTUBucketOps = 10_000
	return cfg
}

func TestBaselineRunsToCompletion(t *testing.T) {
	ck := buildChase(t, 2000, 1, 2, false)
	res := Run(ck, testConfig())
	if res.Core.Retired != uint64(ck.Trace.Len()) {
		t.Fatalf("retired %d of %d", res.Core.Retired, ck.Trace.Len())
	}
	if res.Counters.L2Misses == 0 {
		t.Fatal("pointer chase produced no L2 misses")
	}
	if res.Counters.Walks == 0 {
		t.Fatal("no page walks despite cold TLB")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := testConfig().WithContent(core.DefaultConfig)
	a := Run(buildChase(t, 3000, 1, 2, false), cfg)
	b := Run(buildChase(t, 3000, 1, 2, false), cfg)
	if a.Core.Cycles != b.Core.Cycles {
		t.Fatalf("nondeterministic: %d vs %d cycles", a.Core.Cycles, b.Core.Cycles)
	}
	if a.Counters.PrefIssued != b.Counters.PrefIssued {
		t.Fatalf("nondeterministic prefetch counts: %v vs %v",
			a.Counters.PrefIssued, b.Counters.PrefIssued)
	}
}

// TestDeterminismCountersIdentical is the determinism contract the detrand
// analyzer (cmd/simlint) exists to protect: two runs of the same
// workload/seed produce a byte-identical stats.Counters block — every
// counter, not just headline cycles. Counters is a flat struct of scalars
// and fixed-size arrays, so == compares every field.
func TestDeterminismCountersIdentical(t *testing.T) {
	cfg := testConfig().WithContent(core.DefaultConfig)
	cfg.WarmupOps = 10_000
	a := Run(buildChase(t, 16_000, 2, 4, true), cfg)
	b := Run(buildChase(t, 16_000, 2, 4, true), cfg)
	if *a.Counters != *b.Counters {
		av := reflect.ValueOf(*a.Counters)
		bv := reflect.ValueOf(*b.Counters)
		for i := 0; i < av.NumField(); i++ {
			if x, y := av.Field(i), bv.Field(i); !x.Equal(y) {
				t.Errorf("Counters.%s differs between identical runs: %v vs %v",
					av.Type().Field(i).Name, x, y)
			}
		}
		t.Fatal("stats.Counters not byte-identical across identical runs")
	}
	if a.MeasuredCycles != b.MeasuredCycles || a.MeasuredUops != b.MeasuredUops {
		t.Fatalf("measured region differs: %d/%d cycles, %d/%d µops",
			a.MeasuredCycles, b.MeasuredCycles, a.MeasuredUops, b.MeasuredUops)
	}
	if !reflect.DeepEqual(a.MPTU.Values(), b.MPTU.Values()) {
		t.Fatal("MPTU series differs across identical runs")
	}
}

func TestContentPrefetcherSpeedsUpPointerChase(t *testing.T) {
	// Working set 32K nodes * 64B = 2 MiB > 1 MiB UL2: capacity misses on
	// every pass.
	ck := buildChase(t, 32_000, 2, 4, true)
	base := Run(ck, testConfig())
	cdp := Run(ck, testConfig().WithContent(core.DefaultConfig))
	sp := cdp.SpeedupOver(base)
	t.Logf("baseline %d cycles, cdp %d cycles, speedup %.3f",
		base.MeasuredCycles, cdp.MeasuredCycles, sp)
	t.Logf("cdp issued %d content prefetches, %d useful, %d full hits, %d partial",
		cdp.Counters.PrefIssued[cache.SrcContent],
		cdp.Counters.PrefUseful[cache.SrcContent],
		cdp.Counters.FullHits[cache.SrcContent],
		cdp.Counters.PartialHits[cache.SrcContent])
	if cdp.Counters.PrefIssued[cache.SrcContent] == 0 {
		t.Fatal("content prefetcher issued nothing")
	}
	if cdp.Counters.UsefulPrefetches(cache.SrcContent) == 0 {
		t.Fatal("no content prefetch was useful")
	}
	if sp < 1.05 {
		t.Fatalf("content prefetcher speedup %.3f, want >= 1.05 on a pure pointer chase", sp)
	}
}

func TestReinforcementBeatsNoReinforcementAtLowDepth(t *testing.T) {
	ck := buildChase(t, 32_000, 2, 4, true)
	nr := core.DefaultConfig
	nr.Reinforce = false
	nr.DepthThreshold = 3
	reinf := core.DefaultConfig
	reinf.Reinforce = true
	reinf.DepthThreshold = 3
	a := Run(ck, testConfig().WithContent(nr))
	b := Run(ck, testConfig().WithContent(reinf))
	t.Logf("no-reinforcement %d cycles, reinforcement %d cycles (rescans %d)",
		a.MeasuredCycles, b.MeasuredCycles, b.Counters.Rescans)
	if b.Counters.Rescans == 0 {
		t.Fatal("reinforcement never rescanned")
	}
	if b.MeasuredCycles >= a.MeasuredCycles {
		t.Fatalf("reinforcement did not help: %d vs %d cycles", b.MeasuredCycles, a.MeasuredCycles)
	}
}

func TestStrideOwnsRegularWorkload(t *testing.T) {
	ck := buildStrideWalk(t, 40_000, 2)
	base := Run(ck, testConfig())
	if base.Counters.PrefIssued[cache.SrcStride] == 0 {
		t.Fatal("stride prefetcher idle on a sequential walk")
	}
	if base.Counters.UsefulPrefetches(cache.SrcStride) == 0 {
		t.Fatal("stride prefetches never useful")
	}
	nostride := testConfig()
	nostride.Stride = nil
	off := Run(ck, nostride)
	if sp := base.SpeedupOver(off); sp < 1.03 {
		t.Fatalf("stride prefetcher speedup over no-prefetch = %.3f, want >= 1.03", sp)
	}
	// The content prefetcher must not slow a stride workload much.
	cdp := Run(ck, testConfig().WithContent(core.DefaultConfig))
	sp := cdp.SpeedupOver(base)
	t.Logf("stride workload: cdp speedup %.3f, content issued %d",
		sp, cdp.Counters.PrefIssued[cache.SrcContent])
	if sp < 0.97 {
		t.Fatalf("content prefetcher degraded stride workload: %.3f", sp)
	}
}

func TestInjectionPollutes(t *testing.T) {
	ck := buildChase(t, 16_000, 2, 4, true)
	base := Run(ck, testConfig())
	inj := testConfig()
	inj.InjectBadPrefetches = true
	bad := Run(ck, inj)
	t.Logf("baseline %d cycles, injected %d cycles, %d injections",
		base.MeasuredCycles, bad.MeasuredCycles, bad.Counters.InjectedPrefetches)
	if bad.Counters.InjectedPrefetches == 0 {
		t.Fatal("injection inactive")
	}
	if bad.MeasuredCycles <= base.MeasuredCycles {
		t.Fatal("pollution injection did not hurt performance")
	}
}

func TestMPTUSeriesRecords(t *testing.T) {
	ck := buildChase(t, 8000, 1, 2, false)
	res := Run(ck, testConfig())
	if res.MPTU.Len() == 0 {
		t.Fatal("MPTU series empty")
	}
	var total float64
	for _, v := range res.MPTU.Values() {
		total += v
	}
	if total == 0 {
		t.Fatal("MPTU series all zero despite misses")
	}
}

func TestWarmupResetsCounters(t *testing.T) {
	ck := buildChase(t, 16_000, 2, 4, true)
	cfg := testConfig()
	cfg.WarmupOps = 20_000
	res := Run(ck, cfg)
	if res.Counters.WarmCycles == 0 {
		t.Fatal("warm-up boundary not recorded")
	}
	if res.MeasuredCycles >= res.Core.Cycles {
		t.Fatal("measured region not smaller than total")
	}
	if res.MeasuredUops != res.Core.Retired-20_000 {
		t.Fatalf("measured µops = %d", res.MeasuredUops)
	}
}

func TestCDPIssuesSpeculativeWalks(t *testing.T) {
	ck := buildChase(t, 32_000, 1, 4, true)
	res := Run(ck, testConfig().WithContent(core.DefaultConfig))
	if res.Counters.CDPNeedWalk == 0 {
		t.Fatal("no content prefetch ever needed a translation")
	}
	if res.Counters.CDPWalks == 0 {
		t.Fatal("content prefetcher never walked the page table")
	}
	t.Logf("content prefetches needing walk: %d of %d issued",
		res.Counters.CDPNeedWalk, res.Counters.PrefIssued[cache.SrcContent])
}

func TestAdaptiveControllerRunsInSim(t *testing.T) {
	ck := buildChase(t, 16_000, 1, 4, true)
	cfg := core.DefaultConfig
	ac := core.AdaptiveConfig{
		Window: 256, MinCompare: 8, MaxCompare: 12,
		LowAccuracy: 0.9, HighAccuracy: 0.95, // absurdly high: force tightening
	}
	cfg.Adaptive = &ac
	res := Run(ck, testConfig().WithContent(cfg))
	if res.Counters.PrefIssued[cache.SrcContent] == 0 {
		t.Fatal("adaptive prefetcher issued nothing")
	}
	// With a 90% accuracy target the controller must have tightened.
	// (The prefetcher instance is internal; observe via determinism of
	// the run and the fact it still completes and prefetches.)
	fixed := Run(ck, testConfig().WithContent(core.DefaultConfig))
	if res.Counters.PrefIssued[cache.SrcContent] >= fixed.Counters.PrefIssued[cache.SrcContent] {
		t.Fatalf("tightening did not reduce issue volume: adaptive %d vs fixed %d",
			res.Counters.PrefIssued[cache.SrcContent],
			fixed.Counters.PrefIssued[cache.SrcContent])
	}
}

func TestDepthThresholdBoundsChaining(t *testing.T) {
	ck := buildChase(t, 16_000, 1, 4, true)
	cfg := core.DefaultConfig
	cfg.NextLines = 0
	cfg.Reinforce = false
	cfg.DepthThreshold = 1
	shallow := Run(ck, testConfig().WithContent(cfg))
	cfg.DepthThreshold = 9
	deep := Run(ck, testConfig().WithContent(cfg))
	// Without reinforcement, deeper chains must issue more prefetches
	// (the Figure 9 "nr" trend).
	if deep.Counters.PrefIssued[cache.SrcContent] <= shallow.Counters.PrefIssued[cache.SrcContent] {
		t.Fatalf("depth 9 issued %d <= depth 1 issued %d",
			deep.Counters.PrefIssued[cache.SrcContent],
			shallow.Counters.PrefIssued[cache.SrcContent])
	}
	if deep.MeasuredCycles >= shallow.MeasuredCycles {
		t.Fatalf("deeper chaining did not help without reinforcement: %d vs %d",
			deep.MeasuredCycles, shallow.MeasuredCycles)
	}
}
