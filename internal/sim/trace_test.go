package sim

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/simtrace"
	"repro/internal/stats"
)

// TestTracedRunIsByteIdentical is the observe-without-perturbing contract:
// attaching a tracer must not change a single counter or cycle. Goldens and
// determinism therefore hold whether or not -trace is passed.
func TestTracedRunIsByteIdentical(t *testing.T) {
	cfg := testConfig().WithContent(core.DefaultConfig)
	plain := Run(buildChase(t, 6000, 2, 4, true), cfg)
	tr := simtrace.New(1 << 19)
	traced := RunTraced(buildChase(t, 6000, 2, 4, true), cfg, tr)

	if *plain.Counters != *traced.Counters {
		t.Fatal("stats.Counters differ between traced and untraced runs")
	}
	if plain.Core.Cycles != traced.Core.Cycles {
		t.Fatalf("cycles differ: %d untraced vs %d traced",
			plain.Core.Cycles, traced.Core.Cycles)
	}
	if tr.Len() == 0 {
		t.Fatal("traced run emitted no events")
	}
}

// TestChainLineageMatchesCounters reconstructs CDP chain lineage from the
// trace of a synthetic pointer chase and checks it against the simulator's
// own unconditional counters: the trace and the counters are two
// descriptions of the same run, so chain count and the per-depth issue
// histogram must agree exactly — and at least one chain must be
// reconstructable end-to-end (fill → scan → deeper issue → fill, all under
// one chain ID) at depth >= 2.
func TestChainLineageMatchesCounters(t *testing.T) {
	cfg := testConfig().WithContent(core.DefaultConfig)
	ck := buildChase(t, 6000, 2, 4, true)
	tr := simtrace.New(1 << 19)
	res := RunTraced(ck, cfg, tr)

	if tr.Dropped() != 0 {
		t.Fatalf("ring dropped %d events; grow the capacity so lineage is complete", tr.Dropped())
	}
	c := res.Counters
	if c.CDPChains == 0 {
		t.Fatal("pointer chase started no content chains")
	}

	chains := tr.Chains()
	if uint64(len(chains)) != c.CDPChains {
		t.Fatalf("trace reconstructed %d chains, counters say %d", len(chains), c.CDPChains)
	}

	var perDepth [stats.MaxChainDepth]uint64
	var issued uint64
	for _, ch := range chains {
		for d, n := range ch.IssuedAtDepth {
			perDepth[d] += uint64(n)
		}
		issued += uint64(ch.Issued)
	}
	if perDepth != c.CDPIssuedAtDepth {
		t.Fatalf("per-depth issue histogram from trace %v != counters %v",
			perDepth, c.CDPIssuedAtDepth)
	}
	if issued != c.PrefIssued[cache.SrcContent] {
		t.Fatalf("trace saw %d content issues, counters say %d",
			issued, c.PrefIssued[cache.SrcContent])
	}

	// Find a chain that went at least two deep and replay its events,
	// demanding the full lineage: an issue at depth d, its fill, the scan
	// of that fill, a deeper issue at d+1, and that issue's fill — all
	// carrying the same chain ID.
	deep := uint64(0)
	for _, ch := range chains {
		if ch.MaxDepth >= 2 {
			deep = ch.ID
			break
		}
	}
	if deep == 0 {
		t.Fatal("no chain reached depth >= 2; the chase should chain deeper")
	}
	const (
		wantIssue0 = iota
		wantFill0
		wantScan
		wantIssue1
		wantFill1
		done
	)
	state := wantIssue0
	var d int16
	for _, e := range tr.Events() {
		if e.Chain != deep || state == done {
			continue
		}
		switch state {
		case wantIssue0:
			if e.Kind == simtrace.KindIssue {
				d, state = e.Depth, wantFill0
			}
		case wantFill0:
			if e.Kind == simtrace.KindFill && e.Depth == d {
				state = wantScan
			}
		case wantScan:
			if e.Kind == simtrace.KindScan && e.Depth == d {
				state = wantIssue1
			}
		case wantIssue1:
			if e.Kind == simtrace.KindIssue && e.Depth == d+1 {
				state = wantFill1
			}
		case wantFill1:
			if e.Kind == simtrace.KindFill && e.Depth == d+1 {
				state = done
			}
		}
	}
	if state != done {
		t.Fatalf("chain %d not reconstructable end-to-end: stuck waiting for step %d", deep, state)
	}
}

// TestCheckpointedTracedRunMatches runs the checkpoint path with a tracer
// attached and checks the result matches an untraced checkpointed run —
// tracing must not perturb the snapshotting runner either, and MemState
// carries ChainSeq so chain IDs stay stable across snapshots.
func TestCheckpointedTracedRunMatches(t *testing.T) {
	cfg := testConfig().WithContent(core.DefaultConfig)
	cfg.CheckpointEveryOps = 5000
	plain, err := RunCheckpointed(buildChase(t, 4000, 1, 4, true), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := simtrace.New(1 << 18)
	traced, err := RunCheckpointedTraced(buildChase(t, 4000, 1, 4, true), cfg, tr, nil)
	if err != nil {
		t.Fatal(err)
	}

	if *plain.Counters != *traced.Counters {
		t.Fatal("checkpointed traced run diverged from untraced checkpointed run")
	}
	if tr.Len() == 0 {
		t.Fatal("checkpointed traced run emitted no events")
	}
}
