package simcache

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// TestErrorNotCached is the satellite coverage: a failed compute leaves no
// residue — the next lookup computes again and a later success is cached.
func TestErrorNotCached(t *testing.T) {
	c := New(1 << 20)
	k := key(9)
	boom := errors.New("transient failure")

	calls := 0
	fn := func() ([]byte, error) {
		calls++
		if calls == 1 {
			return nil, boom
		}
		return []byte("payload"), nil
	}

	if _, _, err := c.GetOrCompute(k, fn); !errors.Is(err, boom) {
		t.Fatalf("first call: %v, want the compute error", err)
	}
	if _, ok := c.Get(k); ok {
		t.Fatal("failed compute was cached")
	}
	v, hit, err := c.GetOrCompute(k, fn)
	if err != nil || hit || string(v) != "payload" {
		t.Fatalf("second call got (%q, hit=%v, %v), want a fresh compute", v, hit, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2", calls)
	}
	if _, ok := c.Get(k); !ok {
		t.Fatal("successful compute not cached")
	}
}

// TestWaiterRetriesRatherThanStaleError is the second satellite invariant:
// a collapsed waiter whose leader fails must not inherit the leader's
// error — it retries, becomes the next leader, and computes for itself.
func TestWaiterRetriesRatherThanStaleError(t *testing.T) {
	c := New(1 << 20)
	k := key(10)
	leaderEntered := make(chan struct{})
	release := make(chan struct{})
	leaderErr := errors.New("leader-specific failure")

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := c.GetOrCompute(k, func() ([]byte, error) {
			close(leaderEntered)
			<-release
			return nil, leaderErr
		})
		if !errors.Is(err, leaderErr) {
			t.Errorf("leader got %v, want its own error", err)
		}
	}()
	<-leaderEntered

	waiterDone := make(chan struct{})
	var waiterVal []byte
	var waiterHit bool
	var waiterErr error
	go func() {
		defer close(waiterDone)
		waiterVal, waiterHit, waiterErr = c.GetOrCompute(k, func() ([]byte, error) {
			return []byte("fresh"), nil
		})
	}()

	// Wait until the waiter has actually collapsed onto the leader's
	// flight before letting the leader fail.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Collapsed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never collapsed onto the in-flight compute")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	<-waiterDone

	if waiterErr != nil {
		t.Fatalf("waiter inherited an error: %v", waiterErr)
	}
	if waiterHit || string(waiterVal) != "fresh" {
		t.Fatalf("waiter got (%q, hit=%v), want its own fresh compute", waiterVal, waiterHit)
	}
	st := c.Stats()
	if st.Misses != 2 || st.Collapsed != 1 {
		t.Fatalf("stats %+v, want 2 misses (leader + retried waiter) and 1 collapse", st)
	}
}

// TestComputeErrorFault drives the simcache.compute.error fault point: the
// injected failure is surfaced, not cached, and a retry succeeds.
func TestComputeErrorFault(t *testing.T) {
	prev := faultinject.Enable(faultinject.MustParse(5, "simcache.compute.error:times=1"))
	defer faultinject.Enable(prev)

	c := New(1 << 20)
	k := key(11)
	fn := func() ([]byte, error) { return []byte("v"), nil }

	_, _, err := c.GetOrCompute(k, fn)
	var inj *faultinject.InjectedError
	if !errors.As(err, &inj) {
		t.Fatalf("want injected error, got %v", err)
	}
	if _, ok := c.Get(k); ok {
		t.Fatal("injected failure was cached")
	}
	if _, _, err := c.GetOrCompute(k, fn); err != nil {
		t.Fatalf("retry after injected failure: %v", err)
	}
}

// TestEvictStormFault drives simcache.evict.storm: resident entries are
// flushed before the new insert, the byte accounting stays exact, and the
// cache keeps working.
func TestEvictStormFault(t *testing.T) {
	c := New(1 << 20)
	for b := byte(0); b < 5; b++ {
		kk := key(b)
		if _, _, err := c.GetOrCompute(kk, func() ([]byte, error) { return []byte{b}, nil }); err != nil {
			t.Fatal(err)
		}
	}
	prev := faultinject.Enable(faultinject.MustParse(6, "simcache.evict.storm:times=1"))
	defer faultinject.Enable(prev)

	if _, _, err := c.GetOrCompute(key(100), func() ([]byte, error) { return []byte("new"), nil }); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Entries != 1 || st.Bytes != 3 {
		t.Fatalf("after storm: %d entries / %d bytes, want only the fresh insert", st.Entries, st.Bytes)
	}
	if st.Evictions != 5 {
		t.Fatalf("storm evicted %d, want all 5 residents", st.Evictions)
	}
	if _, ok := c.Get(key(100)); !ok {
		t.Fatal("fresh entry missing after storm")
	}
}
