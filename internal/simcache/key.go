// Package simcache is cdpd's content-addressed result cache. A simulation
// is a pure function of its inputs — PR 2's golden tests prove two runs of
// the same (benchmark, Config, ops) triple are byte-identical — so a
// rendered result can be cached under a canonical hash of those inputs and
// served to every later identical request. The cache is LRU-bounded by
// payload bytes, and concurrent misses on the same key are collapsed so a
// stampede of identical submissions simulates exactly once.
package simcache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math"
	"reflect"

	"repro/internal/sim"
	"repro/internal/workloads"
)

// Key addresses one cached result. Keys are canonical: they depend only on
// the values reachable from the inputs (pointers are followed, never
// compared by address), so two configurations that describe the same
// machine produce the same key no matter how they were built.
type Key [sha256.Size]byte

// String renders a short hex prefix for logs and job IDs.
func (k Key) String() string { return hex.EncodeToString(k[:8]) }

// Hex renders the full key, the form the disk and peer cache tiers address
// entries by (the 8-byte String prefix is for humans; tiers need the whole
// hash so distinct results can never alias on disk or over HTTP).
func (k Key) Hex() string { return hex.EncodeToString(k[:]) }

// ParseKey inverts Hex. It rejects anything that is not exactly one
// full-length lowercase-hex key, so a peer-fetch URL or a stray file in the
// cache directory cannot smuggle in a truncated key.
func ParseKey(s string) (Key, error) {
	var k Key
	if len(s) != 2*len(k) {
		return Key{}, fmt.Errorf("simcache: key %q is %d hex chars, want %d", s, len(s), 2*len(k))
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return Key{}, fmt.Errorf("simcache: key %q is not hex: %v", s, err)
	}
	copy(k[:], b)
	return k, nil
}

// KeyFor hashes one simulation request. The benchmark is identified by
// name (workloads.Spec builders are registered by name and deterministic),
// the µop budget pins the generated trace, and the configuration is walked
// field by field.
func KeyFor(spec workloads.Spec, cfg sim.Config, ops int) Key {
	h := sha256.New()
	e := encoder{h: h}
	e.str("sim")
	e.str(spec.Name)
	e.i64(int64(ops))
	e.value(reflect.ValueOf(cfg))
	var k Key
	h.Sum(k[:0])
	return k
}

// KeyForExperiment hashes one registered-experiment request. Experiments
// are deterministic for the same (id, ops, reps) triple, so their rendered
// reports are cacheable exactly like single simulations.
func KeyForExperiment(id string, ops int, reps bool) Key {
	h := sha256.New()
	e := encoder{h: h}
	e.str("experiment")
	e.str(id)
	e.i64(int64(ops))
	e.boolean(reps)
	var k Key
	h.Sum(k[:0])
	return k
}

// KeyForArena hashes one arena-sweep request. The engine and benchmark
// lists are length-prefixed so no concatenation of two lists collides with
// a different split of the same names.
func KeyForArena(benchmarks, engines []string, ops int) Key {
	h := sha256.New()
	e := encoder{h: h}
	e.str("arena")
	e.i64(int64(ops))
	e.u64(uint64(len(benchmarks)))
	for _, b := range benchmarks {
		e.str(b)
	}
	e.u64(uint64(len(engines)))
	for _, eng := range engines {
		e.str(eng)
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// encoder writes an injective binary form of a value tree into a hash.
// Every atom is prefixed with a kind tag and, where variable-length, a
// length, so no two distinct value trees share an encoding — the property
// behind the "any single field change changes the key" guarantee.
type encoder struct{ h hash.Hash }

// Kind tags. The gap between scalar kinds and structure kinds is cosmetic;
// only distinctness matters.
const (
	tagBool   = 1
	tagInt    = 2
	tagUint   = 3
	tagFloat  = 4
	tagString = 5
	tagNilPtr = 6
	tagPtr    = 7
	tagStruct = 8
	tagArray  = 9
)

func (e encoder) byte(b byte) { e.h.Write([]byte{b}) }

func (e encoder) i64(v int64) {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(v))
	e.h.Write(buf[:])
}

func (e encoder) u64(v uint64) {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	e.h.Write(buf[:])
}

func (e encoder) str(s string) {
	e.byte(tagString)
	e.u64(uint64(len(s)))
	e.h.Write([]byte(s))
}

func (e encoder) boolean(b bool) {
	e.byte(tagBool)
	if b {
		e.byte(1)
	} else {
		e.byte(0)
	}
}

// value encodes v recursively. Configuration types are compositions of
// scalars, strings, structs, arrays, and pointers to such; any other kind
// (map, slice, func, chan, interface) has no canonical form and panics, so
// adding an unhashable field to sim.Config fails loudly in the simcache
// tests rather than silently aliasing cache entries.
func (e encoder) value(v reflect.Value) {
	switch v.Kind() {
	case reflect.Bool:
		e.boolean(v.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		e.byte(tagInt)
		e.i64(v.Int())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		e.byte(tagUint)
		e.u64(v.Uint())
	case reflect.Float32, reflect.Float64:
		e.byte(tagFloat)
		e.u64(math.Float64bits(v.Float()))
	case reflect.String:
		e.str(v.String())
	case reflect.Pointer:
		if v.IsNil() {
			e.byte(tagNilPtr)
			return
		}
		e.byte(tagPtr)
		e.value(v.Elem())
	case reflect.Struct:
		e.byte(tagStruct)
		t := v.Type()
		e.str(t.Name())
		e.u64(uint64(t.NumField()))
		for i := 0; i < t.NumField(); i++ {
			e.str(t.Field(i).Name)
			e.value(v.Field(i))
		}
	case reflect.Array:
		e.byte(tagArray)
		e.u64(uint64(v.Len()))
		for i := 0; i < v.Len(); i++ {
			e.value(v.Index(i))
		}
	default:
		panic(fmt.Sprintf("simcache: cannot canonically hash kind %s (type %s)", v.Kind(), v.Type()))
	}
}
