package simcache

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func specFor(t *testing.T, name string) workloads.Spec {
	t.Helper()
	s, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestKeyCanonicalEquality: configurations that compare equal — and
// configurations that are value-equal but built independently (distinct
// pointers to equal policy blocks) — must share a key.
func TestKeyCanonicalEquality(t *testing.T) {
	spec := specFor(t, "tpcc-1")
	a := sim.Default()
	b := a // shares pointer fields, so a == b
	if a != b {
		t.Fatal("copied config does not compare equal")
	}
	if KeyFor(spec, a, 60_000) != KeyFor(spec, b, 60_000) {
		t.Fatal("equal configs produced different keys")
	}

	// Same machine, independently built: pointer identity differs, the
	// canonical key must not.
	c1 := sim.Default().WithContent(core.DefaultConfig)
	c2 := sim.Default().WithContent(core.DefaultConfig)
	if c1.Content == c2.Content {
		t.Fatal("test premise broken: WithContent shared a pointer")
	}
	if KeyFor(spec, c1, 60_000) != KeyFor(spec, c2, 60_000) {
		t.Fatal("value-equal configs with distinct pointers produced different keys")
	}
}

// TestKeySeparatesInputs: the non-config inputs (benchmark, ops) are part
// of the key.
func TestKeySeparatesInputs(t *testing.T) {
	cfg := sim.Default()
	base := KeyFor(specFor(t, "tpcc-1"), cfg, 60_000)
	if KeyFor(specFor(t, "tpcc-2"), cfg, 60_000) == base {
		t.Fatal("different benchmarks share a key")
	}
	if KeyFor(specFor(t, "tpcc-1"), cfg, 60_001) == base {
		t.Fatal("different µop budgets share a key")
	}
	if KeyForExperiment("fig1", 60_000, true) == KeyForExperiment("fig1", 60_000, false) {
		t.Fatal("reps flag not part of the experiment key")
	}
}

// TestKeySensitiveToEveryField walks the fully-populated configuration
// (content + markov + stride all enabled, so every pointer is followed)
// and perturbs each scalar leaf in turn: every single-field change must
// change the key, and undoing it must restore the key.
func TestKeySensitiveToEveryField(t *testing.T) {
	spec := specFor(t, "tpcc-1")
	cfg := sim.Default().WithContent(core.DefaultConfig)
	cfg = cfg.WithMarkov(128*1024, cfg.L2)
	// Deep-copy so mutations through pointer fields cannot corrupt
	// package-level defaults like prefetch.DefaultStrideConfig.
	v := deepCopy(reflect.ValueOf(cfg))
	base := KeyFor(spec, v.Interface().(sim.Config), 60_000)

	leaves := 0
	perturbLeaves(v, "Config", func(path string) {
		leaves++
		got := KeyFor(spec, v.Interface().(sim.Config), 60_000)
		if got == base {
			t.Errorf("mutating %s did not change the key", path)
		}
	})
	if leaves < 30 {
		t.Fatalf("walked only %d leaves; the config walk is not reaching nested blocks", leaves)
	}
	if got := KeyFor(spec, v.Interface().(sim.Config), 60_000); got != base {
		t.Fatal("restoring every field did not restore the key")
	}
}

// deepCopy clones a value tree of the kinds the canonical encoder accepts.
func deepCopy(v reflect.Value) reflect.Value {
	switch v.Kind() {
	case reflect.Pointer:
		if v.IsNil() {
			return v
		}
		p := reflect.New(v.Type().Elem())
		p.Elem().Set(deepCopy(v.Elem()))
		return p
	case reflect.Struct:
		out := reflect.New(v.Type()).Elem()
		for i := 0; i < v.NumField(); i++ {
			out.Field(i).Set(deepCopy(v.Field(i)))
		}
		return out
	default:
		out := reflect.New(v.Type()).Elem()
		out.Set(v)
		return out
	}
}

// perturbLeaves visits every scalar leaf reachable from v, mutates it,
// invokes check, and restores the original value before moving on.
func perturbLeaves(v reflect.Value, path string, check func(path string)) {
	switch v.Kind() {
	case reflect.Pointer:
		if !v.IsNil() {
			perturbLeaves(v.Elem(), path, check)
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			f := v.Type().Field(i)
			perturbLeaves(v.Field(i), path+"."+f.Name, check)
		}
	case reflect.Bool:
		old := v.Bool()
		v.SetBool(!old)
		check(path)
		v.SetBool(old)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		old := v.Int()
		v.SetInt(old + 1)
		check(path)
		v.SetInt(old)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		old := v.Uint()
		v.SetUint(old + 1)
		check(path)
		v.SetUint(old)
	case reflect.Float32, reflect.Float64:
		old := v.Float()
		v.SetFloat(old + 1)
		check(path)
		v.SetFloat(old)
	case reflect.String:
		old := v.String()
		v.SetString(old + "×")
		check(path)
		v.SetString(old)
	default:
		panic(fmt.Sprintf("perturbLeaves: unhandled kind %s at %s", v.Kind(), path))
	}
}
