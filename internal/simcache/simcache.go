package simcache

import (
	"container/list"
	"sync"

	"repro/internal/faultinject"
)

// Stats is a point-in-time snapshot of cache effectiveness, surfaced by
// cdpd's /metrics endpoint.
type Stats struct {
	// Hits counts lookups served from a resident entry; Collapsed counts
	// callers that piggybacked on an in-flight computation of the same
	// key (they waited, but no second simulation ran).
	Hits      uint64
	Collapsed uint64
	// Misses counts computations actually started.
	Misses    uint64
	Evictions uint64
	Entries   int
	Bytes     int64
	MaxBytes  int64
}

type entry struct {
	key Key
	val []byte
}

// call is one in-flight computation; latecomers block on done.
type call struct {
	done chan struct{}
	val  []byte
	err  error
}

// Cache is a content-addressed result cache: LRU over payload bytes with
// singleflight collapsing of concurrent identical misses. The zero value
// is not usable; construct with New.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64 // simlint:guardedby mu
	// ll holds *entry values; front = most recently used.
	// simlint:guardedby mu
	ll        *list.List
	items     map[Key]*list.Element // simlint:guardedby mu
	flight    map[Key]*call         // simlint:guardedby mu
	hits      uint64                // simlint:guardedby mu
	collapsed uint64                // simlint:guardedby mu
	misses    uint64                // simlint:guardedby mu
	evictions uint64                // simlint:guardedby mu
}

// New builds a cache bounded to maxBytes of cached payload (metadata is
// not counted). maxBytes must be positive.
func New(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		panic("simcache: non-positive byte bound")
	}
	return &Cache{
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    map[Key]*list.Element{},
		flight:   map[Key]*call{},
	}
}

// Get returns the cached payload for k, if resident. Callers must not
// mutate the returned slice.
func (c *Cache) Get(k Key) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return el.Value.(*entry).val, true
}

// GetOrCompute returns the payload for k, computing it at most once across
// all concurrent callers. hit reports whether the payload came from the
// cache (true) or from a computation this call either ran or waited on
// (false). A failed computation is never cached, and its error is returned
// only to the caller whose compute produced it: collapsed waiters retry
// the lookup (usually becoming the next leader and computing for
// themselves) instead of inheriting an error that may have been specific
// to the failed caller — a canceled context, an injected fault — and is
// stale by the time they observe it.
func (c *Cache) GetOrCompute(k Key, compute func() ([]byte, error)) (val []byte, hit bool, err error) {
	c.mu.Lock()
	for {
		if el, ok := c.items[k]; ok {
			c.ll.MoveToFront(el)
			c.hits++
			v := el.Value.(*entry).val
			c.mu.Unlock()
			return v, true, nil
		}
		cl, ok := c.flight[k]
		if !ok {
			break
		}
		c.collapsed++
		c.mu.Unlock()
		<-cl.done
		if cl.err == nil {
			return cl.val, false, nil
		}
		c.mu.Lock()
	}
	cl := &call{done: make(chan struct{})}
	c.flight[k] = cl
	c.misses++
	c.mu.Unlock()

	cl.val, cl.err = compute()
	if cl.err == nil {
		// Fault point: a compute that "succeeded" upstream but fails at
		// the cache layer (serialization, storage); the error-path
		// invariants are the same either way.
		if ferr := faultinject.Error("simcache.compute.error"); ferr != nil {
			cl.val, cl.err = nil, ferr
		}
	}

	c.mu.Lock()
	delete(c.flight, k)
	if cl.err == nil {
		if faultinject.Should("simcache.evict.storm") {
			c.evictAllLocked()
		}
		c.addLocked(k, cl.val)
	}
	c.mu.Unlock()
	close(cl.done)
	return cl.val, false, cl.err
}

// Add inserts a payload directly, evicting from the cold end as needed.
// The tiered cache uses it to promote disk and peer hits into memory; it
// deliberately bypasses singleflight (the payload already exists, nothing
// is being computed).
func (c *Cache) Add(k Key, val []byte) {
	c.mu.Lock()
	c.addLocked(k, val)
	c.mu.Unlock()
}

// evictAllLocked empties the cache (the eviction-storm fault drill).
// Caller holds c.mu.
func (c *Cache) evictAllLocked() {
	for {
		last := c.ll.Back()
		if last == nil {
			return
		}
		e := last.Value.(*entry)
		c.ll.Remove(last)
		delete(c.items, e.key)
		c.bytes -= int64(len(e.val))
		c.evictions++
	}
}

// addLocked inserts a computed payload and evicts from the cold end until
// the byte bound holds again. Payloads larger than the whole bound are
// served but never cached. Caller holds c.mu.
func (c *Cache) addLocked(k Key, val []byte) {
	if int64(len(val)) > c.maxBytes {
		return
	}
	if el, ok := c.items[k]; ok {
		// A racing Get cannot have inserted (only add does), but a
		// re-entrant fill after an eviction can; refresh in place.
		c.bytes += int64(len(val)) - int64(len(el.Value.(*entry).val))
		el.Value.(*entry).val = val
		c.ll.MoveToFront(el)
	} else {
		c.items[k] = c.ll.PushFront(&entry{key: k, val: val})
		c.bytes += int64(len(val))
	}
	for c.bytes > c.maxBytes {
		last := c.ll.Back()
		if last == nil {
			break
		}
		e := last.Value.(*entry)
		c.ll.Remove(last)
		delete(c.items, e.key)
		c.bytes -= int64(len(e.val))
		c.evictions++
	}
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Collapsed: c.collapsed,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.ll.Len(),
		Bytes:     c.bytes,
		MaxBytes:  c.maxBytes,
	}
}
