package simcache

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"repro/internal/sim"
	"repro/internal/workloads"
)

func key(b byte) Key { return Key{0: b} }

func fill(t *testing.T, c *Cache, k Key, payload []byte) {
	t.Helper()
	v, hit, err := c.GetOrCompute(k, func() ([]byte, error) { return payload, nil })
	if err != nil || hit {
		t.Fatalf("fill of %s: hit=%v err=%v", k, hit, err)
	}
	if !bytes.Equal(v, payload) {
		t.Fatalf("fill of %s returned wrong payload", k)
	}
}

// TestLRUByteBoundEviction pins the byte accounting: inserts evict from
// the cold end exactly when the bound is crossed, and a Get refreshes an
// entry's position.
func TestLRUByteBoundEviction(t *testing.T) {
	c := New(100)
	fill(t, c, key(1), make([]byte, 40))
	fill(t, c, key(2), make([]byte, 40))
	if st := c.Stats(); st.Entries != 2 || st.Bytes != 80 || st.Evictions != 0 {
		t.Fatalf("after two fills: %+v", st)
	}

	// Touch key 1 so key 2 is the LRU victim of the next insert.
	if _, ok := c.Get(key(1)); !ok {
		t.Fatal("key 1 missing before eviction")
	}
	fill(t, c, key(3), make([]byte, 40))
	st := c.Stats()
	if st.Entries != 2 || st.Bytes != 80 || st.Evictions != 1 {
		t.Fatalf("after third fill: %+v", st)
	}
	if _, ok := c.Get(key(2)); ok {
		t.Fatal("key 2 survived eviction despite being LRU")
	}
	if _, ok := c.Get(key(1)); !ok {
		t.Fatal("recently-used key 1 was evicted")
	}

	// One oversized payload evicts everything it must, down to fitting.
	fill(t, c, key(4), make([]byte, 90))
	st = c.Stats()
	if st.Entries != 1 || st.Bytes != 90 {
		t.Fatalf("after oversized fill: %+v", st)
	}

	// A payload larger than the whole bound is served but never cached.
	fill(t, c, key(5), make([]byte, 101))
	if _, ok := c.Get(key(5)); ok {
		t.Fatal("payload above the byte bound was cached")
	}
}

// TestGetOrComputeErrorNotCached: failures propagate and leave no entry.
func TestGetOrComputeErrorNotCached(t *testing.T) {
	c := New(100)
	boom := errors.New("boom")
	_, _, err := c.GetOrCompute(key(1), func() ([]byte, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("failed computation was cached")
	}
	// The key is retryable after the failure.
	fill(t, c, key(1), []byte("ok"))
}

// TestSingleflightCollapsesSimulations is the contract cdpd relies on: N
// concurrent identical submissions run the simulator exactly once (one
// sim.Runs() increment) and everyone gets the same payload.
func TestSingleflightCollapsesSimulations(t *testing.T) {
	const n = 16
	spec, err := workloads.ByName("b2c")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Default()
	cfg.WarmupOps = 1_000
	cfg.MPTUBucketOps = 1_000
	ck := workloads.Checkpoint(spec, 10_000)
	k := KeyFor(spec, cfg, 10_000)

	c := New(1 << 20)
	before := sim.Runs()
	var (
		start sync.WaitGroup
		done  sync.WaitGroup
	)
	start.Add(1)
	payloads := make([][]byte, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		done.Add(1)
		go func(i int) {
			defer done.Done()
			start.Wait()
			payloads[i], _, errs[i] = c.GetOrCompute(k, func() ([]byte, error) {
				res := sim.Run(ck, cfg)
				return []byte(res.String()), nil
			})
		}(i)
	}
	start.Done()
	done.Wait()

	if got := sim.Runs() - before; got != 1 {
		t.Fatalf("%d concurrent identical submissions ran %d simulations, want 1", n, got)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if !bytes.Equal(payloads[i], payloads[0]) {
			t.Fatalf("caller %d saw a different payload", i)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits+st.Collapsed != n-1 {
		t.Fatalf("stats after stampede: %+v (want 1 miss, %d hits+collapsed)", st, n-1)
	}
}
