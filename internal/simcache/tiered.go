package simcache

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
)

// PeerPicker names the peers worth asking for a key, best candidate first.
// The cluster worker implements it over its synced hash ring: the ring
// owner when that is not this process, else the owner's ring successor —
// the member most likely to hold the key from before the latest remap.
type PeerPicker interface {
	Peers(key Key) []string
}

// TierStats counts the disk and peer tiers' traffic, exported by cdpd's
// /metrics alongside the in-memory Stats.
type TierStats struct {
	DiskHits        uint64
	DiskMisses      uint64
	SpillWrites     uint64
	SpillErrors     uint64
	DiskQuarantines uint64
	PeerHits        uint64
	PeerMisses      uint64
}

const (
	// peerFetchTimeout bounds one peer cache probe. A peer fetch is an
	// optimization over recomputing, never required for correctness, so it
	// fails fast rather than inheriting a simulation-sized deadline.
	peerFetchTimeout = 2 * time.Second
	// maxPeerPayload bounds a peer response; rendered results are a few KB,
	// so anything near this is a confused or hostile peer.
	maxPeerPayload = 32 << 20
)

// PeerCachePath is the worker endpoint prefix peer fetches GET from; the
// full key hex follows it. Defined here so the worker handler and the
// fetch path cannot drift.
const PeerCachePath = "/v1/cache/"

// TieredCache layers cdpd's shared result tiers over the in-memory LRU:
//
//	mem   the process-local Cache (LRU + singleflight), always present
//	disk  content-addressed files under dir, shared across restarts and —
//	      on a shared filesystem — across workers ("" disables)
//	peer  HTTP fetch from the ring owner's resident tiers (nil disables)
//
// Lookups probe warm-to-cold and promote hits into every warmer tier, so a
// result computed anywhere in the cluster migrates toward whoever keeps
// asking for it. Computation still happens at most once per process (the
// mem tier's singleflight), and at most once per cluster when the
// coordinator routes a key to its ring owner.
type TieredCache struct {
	mem    *Cache
	dir    string
	picker PeerPicker
	httpc  *http.Client

	// rootCtx bounds peer fetches; Close cancels it.
	rootCtx    context.Context
	rootCancel context.CancelFunc

	diskHits        atomic.Uint64
	diskMisses      atomic.Uint64
	spillWrites     atomic.Uint64
	spillErrors     atomic.Uint64
	diskQuarantines atomic.Uint64
	peerHits        atomic.Uint64
	peerMisses      atomic.Uint64
}

// NewTiered wraps mem with a disk tier under dir ("" = none) and a peer
// tier driven by picker (nil = none). The returned cache owns no goroutines
// but holds a lifecycle context for its peer fetches; Close releases it.
//
// Peer fetches deliberately run under this root with a short per-fetch
// timeout instead of a caller context: they are a cache probe racing a
// recompute, and a caller's simulation-scale deadline must not keep a dead
// peer's connection pinned for minutes.
//
// simlint:rootctx
func NewTiered(mem *Cache, dir string, picker PeerPicker) *TieredCache {
	ctx, cancel := context.WithCancel(context.Background())
	return &TieredCache{
		mem:        mem,
		dir:        dir,
		picker:     picker,
		httpc:      &http.Client{},
		rootCtx:    ctx,
		rootCancel: cancel,
	}
}

// Close cancels any in-flight peer fetches.
func (t *TieredCache) Close() { t.rootCancel() }

// Stats returns the in-memory tier's counters (the shape /metrics has
// always exported); TierStats covers the colder tiers.
func (t *TieredCache) Stats() Stats { return t.mem.Stats() }

// TierStats snapshots the disk and peer counters.
func (t *TieredCache) TierStats() TierStats {
	return TierStats{
		DiskHits:        t.diskHits.Load(),
		DiskMisses:      t.diskMisses.Load(),
		SpillWrites:     t.spillWrites.Load(),
		SpillErrors:     t.spillErrors.Load(),
		DiskQuarantines: t.diskQuarantines.Load(),
		PeerHits:        t.peerHits.Load(),
		PeerMisses:      t.peerMisses.Load(),
	}
}

// Get probes every tier warm-to-cold, promoting a hit into the warmer
// tiers. Callers must not mutate the returned slice.
func (t *TieredCache) Get(k Key) ([]byte, bool) {
	if data, ok := t.mem.Get(k); ok {
		return data, true
	}
	if data, ok := t.diskGet(k); ok {
		t.mem.Add(k, data)
		return data, true
	}
	if data, ok := t.peerGet(k); ok {
		t.mem.Add(k, data)
		t.spill(k, data)
		return data, true
	}
	return nil, false
}

// GetLocal probes only the tiers resident on this machine (mem, disk).
// The peer-fetch HTTP handler serves from it, which is what keeps two
// workers that both miss from chasing each other in a fetch loop.
func (t *TieredCache) GetLocal(k Key) ([]byte, bool) {
	if data, ok := t.mem.Get(k); ok {
		return data, true
	}
	if data, ok := t.diskGet(k); ok {
		t.mem.Add(k, data)
		return data, true
	}
	return nil, false
}

// GetOrCompute is the mem tier's singleflight with the cold tiers probed
// before compute runs: concurrent identical misses still collapse to one
// leader, and the leader checks disk and peers before paying for a
// simulation. Freshly computed payloads spill to disk.
func (t *TieredCache) GetOrCompute(k Key, compute func() ([]byte, error)) ([]byte, bool, error) {
	return t.mem.GetOrCompute(k, func() ([]byte, error) {
		if data, ok := t.diskGet(k); ok {
			return data, nil
		}
		if data, ok := t.peerGet(k); ok {
			t.spill(k, data)
			return data, nil
		}
		data, err := compute()
		if err == nil {
			t.spill(k, data)
		}
		return data, err
	})
}

// diskPath is the content-addressed file for k.
func (t *TieredCache) diskPath(k Key) string { return filepath.Join(t.dir, k.Hex()) }

// crcTrailerLen is the size of the big-endian IEEE CRC32 appended to every
// spilled entry. Rename makes spills atomic against our own crashes, but
// the filesystem underneath may still tear a write (power loss, a shared
// NFS mount, an operator's stray truncate); the trailer lets a reader tell
// a torn entry from a real payload.
const crcTrailerLen = 4

// diskGet reads k from the spill directory and verifies the CRC trailer.
// A short or corrupt file is quarantined — renamed aside with a .corrupt
// suffix so it stops matching the content address — and treated as a miss;
// the caller recomputes and the next spill rewrites the entry cleanly.
func (t *TieredCache) diskGet(k Key) ([]byte, bool) {
	if t.dir == "" {
		return nil, false
	}
	path := t.diskPath(k)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.diskMisses.Add(1)
		return nil, false
	}
	if len(raw) < crcTrailerLen {
		t.quarantine(path)
		return nil, false
	}
	data, trailer := raw[:len(raw)-crcTrailerLen], raw[len(raw)-crcTrailerLen:]
	if crc32.ChecksumIEEE(data) != binary.BigEndian.Uint32(trailer) {
		t.quarantine(path)
		return nil, false
	}
	t.diskHits.Add(1)
	return data, true
}

// quarantine moves a torn or corrupt entry out of the content-addressed
// namespace and records the event as a miss. Renaming (rather than
// deleting) keeps the evidence for operators; either way the entry stops
// poisoning lookups.
func (t *TieredCache) quarantine(path string) {
	if err := os.Rename(path, path+".corrupt"); err != nil {
		_ = os.Remove(path)
	}
	t.diskQuarantines.Add(1)
	t.diskMisses.Add(1)
}

// spill persists a payload plus its CRC32 trailer to the disk tier
// (atomic: temp + rename, so our own crash mid-write leaves no torn entry;
// a concurrent spill of the same key writes identical bytes anyway). Spill
// failures cost durability, never the request. The disk.cache.torn-write
// fault point models the tear rename cannot prevent — a lower layer losing
// the tail of the file — by truncating the payload mid-byte.
func (t *TieredCache) spill(k Key, data []byte) {
	if t.dir == "" {
		return
	}
	framed := make([]byte, len(data)+crcTrailerLen)
	copy(framed, data)
	binary.BigEndian.PutUint32(framed[len(data):], crc32.ChecksumIEEE(data))
	if faultinject.Should("disk.cache.torn-write") {
		framed = framed[:len(framed)/2]
	}
	path := t.diskPath(k)
	tmp := fmt.Sprintf("%s.tmp%d", path, os.Getpid())
	if err := os.WriteFile(tmp, framed, 0o644); err != nil {
		t.spillErrors.Add(1)
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		t.spillErrors.Add(1)
		return
	}
	t.spillWrites.Add(1)
}

// peerGet asks the picker's candidates for k, first answer wins. Every
// failure mode — no picker, no candidates, fetch errors, 404s — is just a
// miss; the caller recomputes. The cluster.peerfetch.error fault point
// models an unreachable or lying peer.
func (t *TieredCache) peerGet(k Key) ([]byte, bool) {
	if t.picker == nil {
		return nil, false
	}
	peers := t.picker.Peers(k)
	if len(peers) == 0 {
		return nil, false
	}
	for _, base := range peers {
		if err := faultinject.Error("cluster.peerfetch.error"); err != nil {
			continue
		}
		if data, ok := t.fetchFrom(base, k); ok {
			t.peerHits.Add(1)
			return data, true
		}
	}
	t.peerMisses.Add(1)
	return nil, false
}

// fetchFrom GETs one peer's local tiers for k.
func (t *TieredCache) fetchFrom(base string, k Key) ([]byte, bool) {
	ctx, cancel := context.WithTimeout(t.rootCtx, peerFetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+PeerCachePath+k.Hex(), nil)
	if err != nil {
		return nil, false
	}
	resp, err := t.httpc.Do(req)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, false
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerPayload))
	if err != nil {
		return nil, false
	}
	return data, true
}
