package simcache

import (
	"bytes"
	"crypto/sha256"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
)

func tierKey(b byte) Key {
	return Key(sha256.Sum256([]byte{b}))
}

// staticPicker returns a fixed peer list for every key.
type staticPicker struct{ peers []string }

func (p staticPicker) Peers(Key) []string { return p.peers }

// TestTieredDiskSpillAndPromote: a computed payload spills to disk; after
// memory is wiped (a restart stand-in), Get serves from disk and promotes
// back into memory.
func TestTieredDiskSpillAndPromote(t *testing.T) {
	dir := t.TempDir()
	tc := NewTiered(New(1<<20), dir, nil)
	defer tc.Close()

	k, payload := tierKey(1), []byte(`{"v":1}`)
	data, hit, err := tc.GetOrCompute(k, func() ([]byte, error) { return payload, nil })
	if err != nil || hit || !bytes.Equal(data, payload) {
		t.Fatalf("compute: data=%s hit=%v err=%v", data, hit, err)
	}
	if ts := tc.TierStats(); ts.SpillWrites != 1 {
		t.Fatalf("spill writes = %d, want 1", ts.SpillWrites)
	}
	if _, err := os.Stat(filepath.Join(dir, k.Hex())); err != nil {
		t.Fatalf("spill file missing: %v", err)
	}

	// Fresh memory over the same directory: the disk tier survives.
	tc2 := NewTiered(New(1<<20), dir, nil)
	defer tc2.Close()
	data, ok := tc2.Get(k)
	if !ok || !bytes.Equal(data, payload) {
		t.Fatalf("disk get: %s %v", data, ok)
	}
	if ts := tc2.TierStats(); ts.DiskHits != 1 {
		t.Fatalf("disk hits = %d, want 1", ts.DiskHits)
	}
	// Promoted: the next Get is a pure memory hit, no new disk traffic.
	if _, ok := tc2.Get(k); !ok {
		t.Fatal("promoted entry missing from memory")
	}
	if ts := tc2.TierStats(); ts.DiskHits != 1 {
		t.Fatalf("disk hits after promotion = %d, want still 1", ts.DiskHits)
	}
}

// TestTieredGetOrComputeChecksDiskFirst: the singleflight leader probes
// disk before paying for a compute.
func TestTieredGetOrComputeChecksDiskFirst(t *testing.T) {
	dir := t.TempDir()
	k, payload := tierKey(2), []byte(`{"v":2}`)
	warm := NewTiered(New(1<<20), dir, nil)
	if _, _, err := warm.GetOrCompute(k, func() ([]byte, error) { return payload, nil }); err != nil {
		t.Fatal(err)
	}
	warm.Close()

	cold := NewTiered(New(1<<20), dir, nil)
	defer cold.Close()
	data, _, err := cold.GetOrCompute(k, func() ([]byte, error) {
		t.Fatal("compute ran although the payload is on disk")
		return nil, nil
	})
	if err != nil || !bytes.Equal(data, payload) {
		t.Fatalf("disk-first compute: %s %v", data, err)
	}
}

// TestTieredPeerFetch: a miss on every local tier is served by a peer, and
// the fetched payload both promotes to memory and spills to disk.
func TestTieredPeerFetch(t *testing.T) {
	k, payload := tierKey(3), []byte(`{"v":3}`)
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == PeerCachePath+k.Hex() {
			w.Write(payload)
			return
		}
		http.NotFound(w, r)
	}))
	defer peer.Close()

	dir := t.TempDir()
	tc := NewTiered(New(1<<20), dir, staticPicker{[]string{peer.URL}})
	defer tc.Close()

	data, ok := tc.Get(k)
	if !ok || !bytes.Equal(data, payload) {
		t.Fatalf("peer get: %s %v", data, ok)
	}
	ts := tc.TierStats()
	if ts.PeerHits != 1 {
		t.Fatalf("peer hits = %d, want 1", ts.PeerHits)
	}
	if ts.SpillWrites != 1 {
		t.Fatalf("peer fetch did not spill to disk (writes = %d)", ts.SpillWrites)
	}
	// GetLocal never reaches peers — but the promoted copy is local now.
	if _, ok := tc.GetLocal(k); !ok {
		t.Fatal("peer-fetched payload not promoted to the local tiers")
	}
}

// TestTieredPeerFetchMiss: unreachable peers and 404s are misses, never
// errors — the caller computes.
func TestTieredPeerFetchMiss(t *testing.T) {
	empty := httptest.NewServer(http.HandlerFunc(http.NotFound))
	defer empty.Close()
	tc := NewTiered(New(1<<20), "", staticPicker{[]string{"http://127.0.0.1:1", empty.URL}})
	defer tc.Close()

	k, payload := tierKey(4), []byte(`{"v":4}`)
	data, hit, err := tc.GetOrCompute(k, func() ([]byte, error) { return payload, nil })
	if err != nil || hit || !bytes.Equal(data, payload) {
		t.Fatalf("compute after peer misses: %s hit=%v err=%v", data, hit, err)
	}
	if ts := tc.TierStats(); ts.PeerMisses != 1 || ts.PeerHits != 0 {
		t.Fatalf("peer counters = %+v, want exactly one miss", ts)
	}
}

// TestTieredPeerFetchFault: the cluster.peerfetch.error fault point makes
// the tier skip a peer that actually holds the payload; the probe falls
// through to a recompute rather than surfacing an error.
func TestTieredPeerFetchFault(t *testing.T) {
	k, payload := tierKey(5), []byte(`{"v":5}`)
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(payload)
	}))
	defer peer.Close()

	prev := faultinject.Enable(faultinject.MustParse(1, "cluster.peerfetch.error"))
	defer faultinject.Enable(prev)

	tc := NewTiered(New(1<<20), "", staticPicker{[]string{peer.URL}})
	defer tc.Close()
	data, hit, err := tc.GetOrCompute(k, func() ([]byte, error) { return payload, nil })
	if err != nil || hit || !bytes.Equal(data, payload) {
		t.Fatalf("faulted peer fetch: %s hit=%v err=%v", data, hit, err)
	}
	if ts := tc.TierStats(); ts.PeerHits != 0 || ts.PeerMisses != 1 {
		t.Fatalf("peer counters under fault = %+v, want a clean miss", ts)
	}
}

// TestTieredDiskQuarantine: a spilled entry truncated mid-byte (a torn
// write under the rename) fails its CRC check on the next read, is renamed
// aside as .corrupt, and reads as a miss; the recompute rewrites a clean
// entry over the content address.
func TestTieredDiskQuarantine(t *testing.T) {
	dir := t.TempDir()
	k, payload := tierKey(7), []byte(`{"v":7,"pad":"xxxxxxxxxxxxxxxx"}`)
	warm := NewTiered(New(1<<20), dir, nil)
	if _, _, err := warm.GetOrCompute(k, func() ([]byte, error) { return payload, nil }); err != nil {
		t.Fatal(err)
	}
	warm.Close()

	// Tear the entry mid-payload, behind rename's back.
	path := filepath.Join(dir, k.Hex())
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	cold := NewTiered(New(1<<20), dir, nil)
	defer cold.Close()
	if _, ok := cold.Get(k); ok {
		t.Fatal("torn entry served as a hit")
	}
	ts := cold.TierStats()
	if ts.DiskQuarantines != 1 || ts.DiskMisses != 1 || ts.DiskHits != 0 {
		t.Fatalf("tier counters after torn read = %+v, want one quarantine counted as a miss", ts)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("torn entry not renamed aside: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("torn entry still at its content address: %v", err)
	}

	// The recompute heals the entry; the next cold read round-trips.
	if _, _, err := cold.GetOrCompute(k, func() ([]byte, error) { return payload, nil }); err != nil {
		t.Fatal(err)
	}
	again := NewTiered(New(1<<20), dir, nil)
	defer again.Close()
	if data, ok := again.Get(k); !ok || !bytes.Equal(data, payload) {
		t.Fatalf("healed entry: %s %v", data, ok)
	}
}

// TestTieredTornWriteFault: the disk.cache.torn-write fault point truncates
// a spill in flight; a fresh cache over the same directory quarantines the
// entry instead of serving garbage.
func TestTieredTornWriteFault(t *testing.T) {
	dir := t.TempDir()
	k, payload := tierKey(8), []byte(`{"v":8,"pad":"yyyyyyyyyyyyyyyy"}`)

	prev := faultinject.Enable(faultinject.MustParse(1, "disk.cache.torn-write:times=1"))
	warm := NewTiered(New(1<<20), dir, nil)
	if _, _, err := warm.GetOrCompute(k, func() ([]byte, error) { return payload, nil }); err != nil {
		t.Fatal(err)
	}
	warm.Close()
	faultinject.Enable(prev)

	cold := NewTiered(New(1<<20), dir, nil)
	defer cold.Close()
	data, hit, err := cold.GetOrCompute(k, func() ([]byte, error) { return payload, nil })
	if err != nil || hit || !bytes.Equal(data, payload) {
		t.Fatalf("compute over torn spill: %s hit=%v err=%v", data, hit, err)
	}
	if ts := cold.TierStats(); ts.DiskQuarantines != 1 {
		t.Fatalf("quarantines = %d, want 1", ts.DiskQuarantines)
	}
	if _, err := os.Stat(filepath.Join(dir, k.Hex()+".corrupt")); err != nil {
		t.Fatalf("torn spill not quarantined: %v", err)
	}
}

// TestTieredNoDirNoPicker: with no cold tiers configured the wrapper
// degrades to the plain memory cache.
func TestTieredNoDirNoPicker(t *testing.T) {
	tc := NewTiered(New(1<<20), "", nil)
	defer tc.Close()
	k, payload := tierKey(6), []byte(`{"v":6}`)
	if _, ok := tc.Get(k); ok {
		t.Fatal("empty cache hit")
	}
	if _, _, err := tc.GetOrCompute(k, func() ([]byte, error) { return payload, nil }); err != nil {
		t.Fatal(err)
	}
	if data, ok := tc.Get(k); !ok || !bytes.Equal(data, payload) {
		t.Fatalf("mem get: %s %v", data, ok)
	}
	if ts := tc.TierStats(); ts != (TierStats{}) {
		t.Fatalf("tier counters moved with no tiers configured: %+v", ts)
	}
}
