package simtrace

import "sort"

// ChainClass is the post-hoc verdict on a content-directed prefetch chain.
type ChainClass uint8

const (
	// ChainPending: the chain's lines were still resident and untouched
	// when the trace ended — no verdict yet.
	ChainPending ChainClass = iota
	// ChainUseful: at least one demand access fully hit a line the chain
	// prefetched.
	ChainUseful
	// ChainLate: no full hit, but a demand access caught one of the
	// chain's lines still in flight — the prefetch was correct but did
	// not arrive in time to hide the whole miss.
	ChainLate
	// ChainPolluting: no demand touched the chain's lines and at least
	// one was evicted unused — the chain only displaced other data.
	ChainPolluting
)

func (c ChainClass) String() string {
	switch c {
	case ChainUseful:
		return "useful"
	case ChainLate:
		return "late"
	case ChainPolluting:
		return "polluting"
	default:
		return "pending"
	}
}

// MaxChainDepth bounds the per-depth issue histogram in ChainSummary;
// deeper issues are clamped into the last bucket. It matches
// stats.MaxChainDepth so reconstructed traces can be checked against the
// simulator's own counters.
const MaxChainDepth = 8

// ChainSummary aggregates every traced event that carried one chain ID.
type ChainSummary struct {
	ID            uint64
	Class         ChainClass
	MaxDepth      int // deepest depth at which the chain issued a prefetch
	Issued        int // prefetches the chain put into the L2 queue
	Fills         int // of those, how many arrived
	FullHits      int // demand accesses that hit a resident chain line
	PartialHits   int // demand accesses that caught a chain line in flight
	EvictedUnused int // chain lines evicted before any demand touched them
	FirstCycle    int64
	LastCycle     int64
	IssuedAtDepth [MaxChainDepth]int
}

// Chains reconstructs per-chain lineage from a stream of events (as
// returned by Tracer.Events) and classifies each chain. Chains are
// returned in ascending ID order, so output is deterministic regardless
// of map iteration.
func Chains(events []Event) []ChainSummary {
	byID := make(map[uint64]*ChainSummary)
	for _, e := range events {
		if e.Chain == 0 {
			continue
		}
		c := byID[e.Chain]
		if c == nil {
			c = &ChainSummary{ID: e.Chain, FirstCycle: e.Cycle}
			byID[e.Chain] = c
		}
		if e.Cycle < c.FirstCycle {
			c.FirstCycle = e.Cycle
		}
		if e.Cycle > c.LastCycle {
			c.LastCycle = e.Cycle
		}
		d := int(e.Depth)
		switch e.Kind {
		case KindIssue:
			c.Issued++
			if d > c.MaxDepth {
				c.MaxDepth = d
			}
			b := d
			if b >= MaxChainDepth {
				b = MaxChainDepth - 1
			}
			if b < 0 {
				b = 0
			}
			c.IssuedAtDepth[b]++
		case KindFill:
			c.Fills++
		case KindDemandHit:
			c.FullHits++
		case KindPartialHit:
			c.PartialHits++
		case KindEvict:
			if e.Arg == 1 {
				c.EvictedUnused++
			}
		}
	}
	out := make([]ChainSummary, 0, len(byID))
	for _, c := range byID {
		c.Class = classify(c)
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Chains reconstructs and classifies the chains resident in the ring.
func (t *Tracer) Chains() []ChainSummary { return Chains(t.Events()) }

// classify applies the chain classification rules (documented in
// DESIGN.md §10): any full hit makes a chain useful; otherwise a partial
// hit makes it late; otherwise an unused eviction makes it polluting;
// otherwise the verdict is still pending.
func classify(c *ChainSummary) ChainClass {
	switch {
	case c.FullHits > 0:
		return ChainUseful
	case c.PartialHits > 0:
		return ChainLate
	case c.EvictedUnused > 0:
		return ChainPolluting
	default:
		return ChainPending
	}
}
