package simtrace

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry in the Chrome trace_event JSON array. Perfetto
// and chrome://tracing both load this format. Cycles are rendered as
// microseconds (1 cycle = 1 µs) so the timeline axis reads directly in
// cycles.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent  `json:"traceEvents"`
	Metadata    map[string]any `json:"metadata,omitempty"`
}

var classNames = [...]string{"demand", "stride", "content", "markov"}

func className(c uint8) string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "unknown"
}

// WriteChromeTrace renders events as Chrome trace_event JSON with one
// track (thread) per component. dropped is the number of events lost to
// ring overflow; it is recorded in the trace metadata so a truncated
// timeline is never mistaken for a complete one.
func WriteChromeTrace(w io.Writer, events []Event, dropped uint64) error {
	out := chromeTrace{
		TraceEvents: make([]chromeEvent, 0, len(events)+8),
		Metadata: map[string]any{
			"tool":           "cdpsim",
			"clock":          "1 cycle = 1us",
			"dropped_events": dropped,
		},
	}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]any{"name": "cdpsim"},
	})
	for comp := CompCore; comp <= CompCDP; comp++ {
		out.TraceEvents = append(out.TraceEvents,
			chromeEvent{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: int(comp),
				Args: map[string]any{"name": comp.String()},
			},
			chromeEvent{
				Name: "thread_sort_index", Ph: "M", Pid: 1, Tid: int(comp),
				Args: map[string]any{"sort_index": int(comp)},
			})
	}
	for _, e := range events {
		ce := chromeEvent{
			Name: e.Kind.String(),
			Ph:   "i",
			S:    "t",
			Ts:   e.Cycle,
			Pid:  1,
			Tid:  int(e.Comp),
			Args: eventArgs(e),
		}
		if e.Kind == KindROBStall {
			// Stalls are emitted at stall end with the length in Arg;
			// render them as complete events spanning the stall.
			ce.Ph = "X"
			ce.S = ""
			ce.Dur = int64(e.Arg)
			ce.Ts = e.Cycle - int64(e.Arg)
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteChromeTrace renders the ring's resident events (see the package
// function for the format).
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, t.Events(), t.Dropped())
}

// eventArgs builds the per-event argument map shown in the Perfetto
// detail pane.
func eventArgs(e Event) map[string]any {
	a := map[string]any{}
	if e.Addr != 0 {
		a["va"] = fmt.Sprintf("0x%08x", e.Addr)
	}
	if e.Addr2 != 0 {
		a["addr2"] = fmt.Sprintf("0x%08x", e.Addr2)
	}
	if e.Chain != 0 {
		a["chain"] = e.Chain
		a["depth"] = e.Depth
	}
	switch e.Kind {
	case KindFill, KindIssue:
		a["class"] = className(e.Class)
	case KindEvict:
		if e.Arg == 1 {
			a["unused_prefetch"] = true
		}
	case KindScan:
		a["candidates"] = e.Arg
	case KindWalk:
		if e.Arg == 1 {
			a["speculative"] = true
		}
	}
	if len(a) == 0 {
		return nil
	}
	return a
}
