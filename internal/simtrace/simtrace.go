// Package simtrace is a zero-cost-when-disabled, ring-buffered structured
// event tracer for the simulator. Components emit typed, cycle-stamped
// events (cache fills, CDP scans and candidate matches, TLB activity,
// prefetch issues, demand hits on prefetched lines, evictions, ROB
// stalls); every content-directed prefetch carries a chain ID and depth so
// a whole pointer chase can be reconstructed end-to-end and classified
// useful / late / polluting after the run.
//
// The disabled path is a nil *Tracer: Enabled() reports false on a nil
// receiver, so call sites guard every emission with
//
//	if tr.Enabled() {
//		tr.Emit(simtrace.Event{...})
//	}
//
// and pay one pointer compare per site when tracing is off (the tracegate
// simlint analyzer enforces the guard). The enabled path writes into a
// preallocated ring and performs zero heap allocations per event; when the
// ring wraps, the oldest events are overwritten and Dropped() reports how
// many were lost.
package simtrace

// Kind identifies the type of a traced event.
type Kind uint8

const (
	// KindFill: a line arrived in the L2 (Addr = line VA, Addr2 = PA).
	KindFill Kind = iota + 1
	// KindEvict: a valid line left the L2 (Addr = line VA; Arg = 1 when
	// the victim was a prefetched line that was never consumed).
	KindEvict
	// KindScan: the CDP scanned a filled line for pointers (Addr = line
	// VA, Addr2 = trigger VA, Arg = candidates produced).
	KindScan
	// KindCandidate: one candidate pointer matched during a scan
	// (Addr = candidate target VA, Addr2 = the pointer word's VA).
	KindCandidate
	// KindIssue: a prefetch entered the L2 queue (Addr = line VA,
	// Addr2 = PA, Class = bus class).
	KindIssue
	// KindDemandHit: a demand access hit a resident prefetched line.
	KindDemandHit
	// KindPartialHit: a demand access caught its line still in flight
	// behind a prefetch (the prefetch was issued but arrived late).
	KindPartialHit
	// KindRescan: a reinforcement rescan of a hot line was scheduled.
	KindRescan
	// KindTLBHit: a DTLB lookup hit (Addr = VA).
	KindTLBHit
	// KindTLBMiss: a DTLB lookup missed (Addr = VA).
	KindTLBMiss
	// KindWalk: a page walk started (Addr = VA, Arg = 1 when
	// speculative, i.e. on behalf of a prefetch).
	KindWalk
	// KindROBStall: fetch stalled on a full ROB; emitted once at stall
	// end with Arg = stall length in cycles.
	KindROBStall
)

var kindNames = [...]string{
	KindFill:       "fill",
	KindEvict:      "evict",
	KindScan:       "scan",
	KindCandidate:  "candidate",
	KindIssue:      "issue",
	KindDemandHit:  "demand-hit",
	KindPartialHit: "partial-hit",
	KindRescan:     "rescan",
	KindTLBHit:     "tlb-hit",
	KindTLBMiss:    "tlb-miss",
	KindWalk:       "walk",
	KindROBStall:   "rob-stall",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "unknown"
}

// Comp identifies the component that emitted an event; the Chrome export
// renders one track per component.
type Comp uint8

const (
	CompCore Comp = iota + 1
	CompCache
	CompTLB
	CompBus
	CompCDP
)

var compNames = [...]string{
	CompCore:  "core",
	CompCache: "cache",
	CompTLB:   "tlb",
	CompBus:   "bus",
	CompCDP:   "cdp",
}

func (c Comp) String() string {
	if int(c) < len(compNames) && compNames[c] != "" {
		return compNames[c]
	}
	return "unknown"
}

// Event is one traced occurrence. It is a plain value — emitting one never
// allocates. Addr/Addr2 and Arg are kind-specific (see the Kind
// constants); Chain is nonzero only for events tied to a content-directed
// prefetch chain, and Depth is the chain depth at which the event
// happened.
type Event struct {
	Cycle int64
	Chain uint64
	Arg   uint64
	Addr  uint32
	Addr2 uint32
	Depth int16
	Kind  Kind
	Comp  Comp
	Class uint8 // bus.Class for fills/issues (0 = demand)
}

// Tracer buffers events in a fixed-capacity ring. The zero value is not
// usable; construct with New. A nil *Tracer is the disabled tracer.
type Tracer struct {
	buf []Event
	n   uint64 // total events emitted; buf index is n % cap
	now int64  // cycle stamp for components that do not carry the clock
}

// New returns an enabled tracer whose ring holds capacity events. When the
// ring is full the oldest events are overwritten.
func New(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// Enabled is the fast-path gate: false on a nil receiver. Every Emit call
// site must be guarded by it so the disabled path costs one comparison
// and zero allocations.
func (t *Tracer) Enabled() bool { return t != nil }

// Emit records an event. Events with Cycle == 0 are stamped with the
// tracer's current cycle (see SetNow), so components that do not carry
// the clock (TLB, prefetcher) can still produce cycle-accurate events.
// Emit sits on every traced µop: the Event must arrive and stay by value
// (one ring-slot copy, zero allocations), which hotalloc and cmd/allocheck
// enforce.
//
// simlint:hotpath
func (t *Tracer) Emit(e Event) {
	if e.Cycle == 0 {
		e.Cycle = t.now
	}
	t.buf[t.n%uint64(len(t.buf))] = e
	t.n++
}

// SetNow updates the cycle stamp applied to events emitted without one.
// The memory system calls this wherever it learns the current cycle.
func (t *Tracer) SetNow(cycle int64) { t.now = cycle }

// Now returns the tracer's current cycle stamp.
func (t *Tracer) Now() int64 { return t.now }

// Len reports how many events are resident in the ring.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	if t.n < uint64(len(t.buf)) {
		return int(t.n)
	}
	return len(t.buf)
}

// Dropped reports how many events were overwritten because the ring
// wrapped.
func (t *Tracer) Dropped() uint64 {
	if t == nil || t.n <= uint64(len(t.buf)) {
		return 0
	}
	return t.n - uint64(len(t.buf))
}

// Events returns the resident events oldest-first. The slice is a copy;
// mutating it does not affect the ring.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	out := make([]Event, 0, t.Len())
	cap64 := uint64(len(t.buf))
	start := uint64(0)
	if t.n > cap64 {
		start = t.n - cap64
	}
	for i := start; i < t.n; i++ {
		out = append(out, t.buf[i%cap64])
	}
	return out
}
