package simtrace

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer is not empty")
	}
	if got := tr.Chains(); len(got) != 0 {
		t.Fatalf("nil tracer produced %d chains", len(got))
	}
}

func TestRingWrapAndOrder(t *testing.T) {
	tr := New(4)
	for i := 1; i <= 7; i++ {
		tr.Emit(Event{Cycle: int64(i), Kind: KindFill, Comp: CompCache})
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 3 {
		t.Fatalf("Dropped = %d, want 3", tr.Dropped())
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("Events returned %d, want 4", len(ev))
	}
	for i, e := range ev {
		if want := int64(i + 4); e.Cycle != want {
			t.Fatalf("event %d has cycle %d, want %d (oldest-first)", i, e.Cycle, want)
		}
	}
}

func TestEmitStampsCycleFromNow(t *testing.T) {
	tr := New(8)
	tr.SetNow(42)
	tr.Emit(Event{Kind: KindTLBHit, Comp: CompTLB})
	tr.Emit(Event{Cycle: 99, Kind: KindTLBMiss, Comp: CompTLB})
	ev := tr.Events()
	if ev[0].Cycle != 42 {
		t.Fatalf("unstamped event got cycle %d, want 42 (tracer now)", ev[0].Cycle)
	}
	if ev[1].Cycle != 99 {
		t.Fatalf("stamped event got cycle %d, want its own 99", ev[1].Cycle)
	}
	if tr.Now() != 42 {
		t.Fatalf("Now = %d, want 42", tr.Now())
	}
}

func TestNewClampsCapacity(t *testing.T) {
	tr := New(0)
	tr.Emit(Event{Cycle: 1, Kind: KindFill})
	tr.Emit(Event{Cycle: 2, Kind: KindFill})
	if tr.Len() != 1 || tr.Dropped() != 1 {
		t.Fatalf("Len=%d Dropped=%d, want 1/1 for capacity-1 ring", tr.Len(), tr.Dropped())
	}
}

// TestChainsReconstruction feeds a hand-built two-chain event stream through
// Chains and checks every aggregate, including classification.
func TestChainsReconstruction(t *testing.T) {
	events := []Event{
		// Chain 1: issued at depth 0, filled, demand-hit => useful. A second
		// issue at depth 1 goes deeper.
		{Cycle: 10, Chain: 1, Depth: 0, Kind: KindIssue, Comp: CompBus, Class: 2},
		{Cycle: 30, Chain: 1, Depth: 0, Kind: KindFill, Comp: CompCache, Class: 2},
		{Cycle: 31, Chain: 1, Depth: 0, Kind: KindScan, Comp: CompCDP, Arg: 1},
		{Cycle: 35, Chain: 1, Depth: 1, Kind: KindIssue, Comp: CompBus, Class: 2},
		{Cycle: 60, Chain: 1, Depth: 1, Kind: KindFill, Comp: CompCache, Class: 2},
		{Cycle: 80, Chain: 1, Depth: 1, Kind: KindDemandHit, Comp: CompCache},
		// Chain 2: issued, caught in flight => late, later evicted unused
		// (late wins over polluting).
		{Cycle: 12, Chain: 2, Depth: 0, Kind: KindIssue, Comp: CompBus, Class: 2},
		{Cycle: 20, Chain: 2, Depth: 0, Kind: KindPartialHit, Comp: CompCache},
		{Cycle: 25, Chain: 2, Depth: 0, Kind: KindFill, Comp: CompCache, Class: 2},
		{Cycle: 90, Chain: 2, Depth: 0, Kind: KindEvict, Comp: CompCache, Arg: 1},
		// Chain-less demand traffic must be ignored.
		{Cycle: 15, Kind: KindFill, Comp: CompCache},
		{Cycle: 16, Kind: KindTLBMiss, Comp: CompTLB},
	}
	chains := Chains(events)
	if len(chains) != 2 {
		t.Fatalf("got %d chains, want 2", len(chains))
	}
	c1, c2 := chains[0], chains[1]
	if c1.ID != 1 || c2.ID != 2 {
		t.Fatalf("chains not sorted by ID: %d, %d", c1.ID, c2.ID)
	}
	if c1.Class != ChainUseful {
		t.Errorf("chain 1 class = %s, want useful", c1.Class)
	}
	if c1.Issued != 2 || c1.Fills != 2 || c1.FullHits != 1 || c1.MaxDepth != 1 {
		t.Errorf("chain 1 = %+v, want issued 2, fills 2, full hits 1, max depth 1", c1)
	}
	if c1.IssuedAtDepth[0] != 1 || c1.IssuedAtDepth[1] != 1 {
		t.Errorf("chain 1 depth histogram = %v", c1.IssuedAtDepth)
	}
	if c1.FirstCycle != 10 || c1.LastCycle != 80 {
		t.Errorf("chain 1 spans [%d,%d], want [10,80]", c1.FirstCycle, c1.LastCycle)
	}
	if c2.Class != ChainLate {
		t.Errorf("chain 2 class = %s, want late (partial hit outranks unused eviction)", c2.Class)
	}
	if c2.PartialHits != 1 || c2.EvictedUnused != 1 {
		t.Errorf("chain 2 = %+v, want partial 1, evicted unused 1", c2)
	}
}

func TestChainsDepthClamp(t *testing.T) {
	chains := Chains([]Event{
		{Cycle: 1, Chain: 7, Depth: MaxChainDepth + 3, Kind: KindIssue},
	})
	if len(chains) != 1 {
		t.Fatalf("got %d chains, want 1", len(chains))
	}
	if chains[0].IssuedAtDepth[MaxChainDepth-1] != 1 {
		t.Fatalf("deep issue not clamped into last bucket: %v", chains[0].IssuedAtDepth)
	}
	if chains[0].MaxDepth != MaxChainDepth+3 {
		t.Fatalf("MaxDepth = %d, want the unclamped %d", chains[0].MaxDepth, MaxChainDepth+3)
	}
}

func TestChainClassification(t *testing.T) {
	cases := []struct {
		name string
		c    ChainSummary
		want ChainClass
	}{
		{"full hit wins", ChainSummary{FullHits: 1, PartialHits: 5, EvictedUnused: 5}, ChainUseful},
		{"partial only", ChainSummary{PartialHits: 1, EvictedUnused: 2}, ChainLate},
		{"evicted only", ChainSummary{EvictedUnused: 1}, ChainPolluting},
		{"nothing yet", ChainSummary{Issued: 3, Fills: 3}, ChainPending},
	}
	for _, tc := range cases {
		if got := classify(&tc.c); got != tc.want {
			t.Errorf("%s: classify = %s, want %s", tc.name, got, tc.want)
		}
	}
}

// TestWriteChromeTrace checks the export is valid JSON in Chrome
// trace_event shape: a traceEvents array whose entries all carry ph/pid/ts,
// with per-component thread metadata and the drop count in the metadata.
func TestWriteChromeTrace(t *testing.T) {
	tr := New(16)
	tr.Emit(Event{Cycle: 5, Chain: 1, Kind: KindIssue, Comp: CompBus, Class: 2, Addr: 0x1000, Addr2: 0x2000})
	tr.Emit(Event{Cycle: 9, Kind: KindROBStall, Comp: CompCore, Arg: 4})
	tr.Emit(Event{Cycle: 11, Kind: KindScan, Comp: CompCDP, Arg: 3, Addr: 0x1000})

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Metadata    map[string]any   `json:"metadata"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if out.Metadata["dropped_events"] != float64(0) {
		t.Errorf("metadata dropped_events = %v, want 0", out.Metadata["dropped_events"])
	}

	threads := map[string]bool{}
	var stall map[string]any
	var issue map[string]any
	for _, e := range out.TraceEvents {
		ph, _ := e["ph"].(string)
		if ph == "" {
			t.Fatalf("event missing ph: %v", e)
		}
		if name, _ := e["name"].(string); name == "thread_name" {
			args := e["args"].(map[string]any)
			threads[args["name"].(string)] = true
		} else if name == "rob-stall" {
			stall = e
		} else if name == "issue" {
			issue = e
		}
	}
	for _, want := range []string{"core", "cache", "tlb", "bus", "cdp"} {
		if !threads[want] {
			t.Errorf("no thread_name metadata for %q track", want)
		}
	}
	if stall == nil || stall["ph"] != "X" || stall["dur"] != float64(4) || stall["ts"] != float64(5) {
		t.Errorf("ROB stall not rendered as a complete event spanning the stall: %v", stall)
	}
	if issue == nil {
		t.Fatal("issue event missing from export")
	}
	args := issue["args"].(map[string]any)
	if args["class"] != "content" || args["chain"] != float64(1) || args["va"] != "0x00001000" {
		t.Errorf("issue args = %v", args)
	}
}

// TestDisabledPathZeroAllocs asserts the guarded call-site pattern —
// if tr.Enabled() { tr.Emit(...) } — allocates nothing when the tracer is
// nil. This is the invariant that lets emission sites live on the
// simulator's hot path.
func TestDisabledPathZeroAllocs(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		if tr.Enabled() {
			tr.Emit(Event{Cycle: 1, Kind: KindFill, Comp: CompCache})
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled emit path allocates %.1f per op, want 0", allocs)
	}
}

// TestEnabledEmitZeroAllocs asserts Emit itself never heap-allocates: the
// ring is preallocated and Event is a plain value.
func TestEnabledEmitZeroAllocs(t *testing.T) {
	tr := New(1024)
	cycle := int64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		cycle++
		if tr.Enabled() {
			tr.Emit(Event{Cycle: cycle, Chain: 3, Addr: 0xdead, Kind: KindFill, Comp: CompCache})
		}
	})
	if allocs != 0 {
		t.Fatalf("enabled emit allocates %.1f per op, want 0", allocs)
	}
}

func BenchmarkEmitDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tr.Enabled() {
			tr.Emit(Event{Cycle: int64(i), Kind: KindFill})
		}
	}
}

func BenchmarkEmitEnabled(b *testing.B) {
	tr := New(1 << 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tr.Enabled() {
			tr.Emit(Event{Cycle: int64(i), Kind: KindFill, Comp: CompCache})
		}
	}
}
