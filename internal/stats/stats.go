// Package stats collects the measurements the paper's evaluation reports:
// per-source prefetch usefulness and timeliness (Figure 10), coverage and
// accuracy — raw and stride-adjusted — for the tuning sweeps (Figures 7 and
// 8), the MPTU warm-up trace (Figure 1), and the drop/squash accounting of
// the arbiters.
package stats

import (
	"fmt"

	"repro/internal/cache"
)

// NumSources sizes the per-source counter arrays (demand, stride, content,
// markov — indexed by cache.Source).
const NumSources = 4

// MaxChainDepth sizes the per-depth content-issue histogram; issues at
// depths beyond it are clamped into the last bucket. It matches
// simtrace.MaxChainDepth so reconstructed chain lineage can be checked
// against these counters exactly.
const MaxChainDepth = 8

// Counters aggregates event counts from one simulation. The simulator
// resets them at the warm-up boundary so reported numbers cover only the
// measured region, as in the paper (Section 2.2).
type Counters struct {
	RetiredUops   uint64 // never reset: drives MPTU bucketing and warm-up
	RetiredStores uint64

	Cycles     int64 // total cycles (set at end of run)
	WarmCycles int64 // cycle at which the warm-up boundary passed

	// Demand-load path.
	DemandLoads uint64 // loads reaching the memory system
	L1Hits      uint64
	L1Misses    uint64 // loads accessing the UL2
	L2Hits      uint64 // demand loads hitting in UL2 (any line)
	L2Misses    uint64 // demand loads missing in UL2

	// Figure 10 decomposition of UL2 load requests that would have
	// missed without prefetching.
	FullHits    [NumSources]uint64 // first demand touch of a prefetched line
	PartialHits [NumSources]uint64 // demand caught an in-flight prefetch
	MissNoPF    uint64             // demand miss with no prefetch in flight

	// Prefetcher activity by source.
	PrefIssued        [NumSources]uint64 // entered the memory queues
	PrefUseful        [NumSources]uint64 // full or partial hit later
	PrefEvictedUnused [NumSources]uint64 // evicted before any demand touch

	// Drop accounting (Section 3.5 rules).
	PrefDroppedPresent  uint64 // line already in UL2
	PrefDroppedInflight uint64 // matching transaction in flight
	PrefDroppedQueue    uint64 // arbiter full
	PrefSquashed        uint64 // removed in favour of a demand request
	PrefDroppedUnmapped uint64 // candidate pointer to an unmapped page

	// Translation activity.
	TLBHits     uint64
	TLBMisses   uint64
	Walks       uint64 // demand-side page walks
	CDPWalks    uint64 // speculative walks issued for content candidates
	CDPNeedWalk uint64 // content prefetches whose translation missed

	// Content-prefetcher feedback activity.
	Rescans        uint64
	PromotedDepths uint64

	// Stride-overlap tracking for the adjusted metrics of Figures 7/8:
	// content prefetches whose target line the stride engine also
	// requested recently.
	CDPOverlapIssued uint64
	CDPOverlapUseful uint64

	// Injection (limit study).
	InjectedPrefetches uint64

	// Chain lineage: every content prefetch belongs to a chain (a fresh
	// chain starts when a scan of a non-speculative fill issues, and the
	// chain ID is inherited by the deeper prefetches its fills trigger).
	// CDPChains counts chains started; CDPIssuedAtDepth histograms
	// content issues by request depth (clamped to MaxChainDepth buckets).
	// Both are maintained unconditionally so traced and untraced runs
	// stay byte-identical.
	CDPChains        uint64
	CDPIssuedAtDepth [MaxChainDepth]uint64

	// MaskBuckets histograms how much of each useful content prefetch's
	// memory latency was hidden: bucket i covers [i*10%, (i+1)*10%) of
	// the round trip, bucket 10 is a fully masked (completed-before-use)
	// prefetch. Backs the paper's Section 4.2.3 timeliness analysis.
	MaskBuckets [11]uint64
}

// AddRetired batches retirement accounting: the core flushes one call per
// retire burst instead of two counter increments per µop. Safe across the
// warm-up Reset because RetiredUops is preserved (additive) there; callers
// must flush before triggering the reset so RetiredStores is exact at the
// boundary.
func (c *Counters) AddRetired(uops, stores uint64) {
	c.RetiredUops += uops
	c.RetiredStores += stores
}

// RecordMask files one useful prefetch's masked-latency fraction.
func (c *Counters) RecordMask(fraction float64) {
	i := int(fraction * 10)
	if i < 0 {
		i = 0
	}
	if i > 10 {
		i = 10
	}
	c.MaskBuckets[i]++
}

// FullyMaskedShare returns the fraction of useful prefetches that hid the
// entire memory latency (the paper reports 72%).
func (c *Counters) FullyMaskedShare() float64 {
	var total uint64
	for _, n := range c.MaskBuckets {
		total += n
	}
	if total == 0 {
		return 0
	}
	return float64(c.MaskBuckets[10]) / float64(total)
}

// Reset zeroes the measurement counters at the warm-up boundary, keeping
// RetiredUops (trace progress) and recording the boundary cycle.
func (c *Counters) Reset(atCycle int64) {
	retired := c.RetiredUops
	*c = Counters{RetiredUops: retired, WarmCycles: atCycle}
}

// MeasuredCycles returns cycles spent after the warm-up boundary.
func (c *Counters) MeasuredCycles() int64 { return c.Cycles - c.WarmCycles }

// UsefulPrefetches sums full and partial hits for a source.
func (c *Counters) UsefulPrefetches(src cache.Source) uint64 {
	return c.FullHits[src] + c.PartialHits[src]
}

// WouldMiss returns the Figure 10 denominator: demand UL2 load requests
// that would have missed without any prefetching.
func (c *Counters) WouldMiss() uint64 {
	n := c.MissNoPF
	for s := 0; s < NumSources; s++ {
		n += c.FullHits[s] + c.PartialHits[s]
	}
	return n
}

// Coverage returns the fraction of would-be misses covered (fully or
// partially) by the given source's prefetches (Equation 1).
func (c *Counters) Coverage(src cache.Source) float64 {
	d := c.WouldMiss()
	if d == 0 {
		return 0
	}
	return float64(c.UsefulPrefetches(src)) / float64(d)
}

// Accuracy returns useful / issued for the given source (Equation 2).
func (c *Counters) Accuracy(src cache.Source) float64 {
	if c.PrefIssued[src] == 0 {
		return 0
	}
	return float64(c.UsefulPrefetches(src)) / float64(c.PrefIssued[src])
}

// AdjustedCoverage is content coverage with stride-overlapping prefetches
// subtracted, isolating the content prefetcher's own contribution as in
// Figure 7.
func (c *Counters) AdjustedCoverage() float64 {
	d := c.WouldMiss()
	if d == 0 {
		return 0
	}
	useful := c.UsefulPrefetches(cache.SrcContent)
	if c.CDPOverlapUseful > useful {
		return 0
	}
	return float64(useful-c.CDPOverlapUseful) / float64(d)
}

// AdjustedAccuracy is content accuracy with stride-overlapping prefetches
// removed from both numerator and denominator.
func (c *Counters) AdjustedAccuracy() float64 {
	issued := c.PrefIssued[cache.SrcContent]
	if c.CDPOverlapIssued > issued {
		return 0
	}
	issued -= c.CDPOverlapIssued
	if issued == 0 {
		return 0
	}
	useful := c.UsefulPrefetches(cache.SrcContent)
	if c.CDPOverlapUseful > useful {
		useful = c.CDPOverlapUseful
	}
	return float64(useful-c.CDPOverlapUseful) / float64(issued)
}

// MPTUFor returns demand misses per 1000 retired µops over the measured
// region, the paper's cache-demand metric.
func (c *Counters) MPTUFor(retiredMeasured uint64) float64 {
	if retiredMeasured == 0 {
		return 0
	}
	return float64(c.L2Misses) * 1000 / float64(retiredMeasured)
}

func (c *Counters) String() string {
	return fmt.Sprintf("stats{retired %d, cycles %d, L2 %d hits / %d misses}",
		c.RetiredUops, c.Cycles, c.L2Hits, c.L2Misses)
}

// MPTUSeries is Figure 1's non-cumulative miss-rate trace: demand UL2
// misses are bucketed by retired-µop intervals.
type MPTUSeries struct {
	BucketOps uint64 // bucket width in retired µops (200,000 in Figure 1)
	buckets   []uint64
}

// NewMPTUSeries returns a series with the given bucket width.
func NewMPTUSeries(bucketOps uint64) *MPTUSeries {
	if bucketOps == 0 {
		panic("stats: zero MPTU bucket width")
	}
	return &MPTUSeries{BucketOps: bucketOps}
}

// Record counts one demand miss occurring when the given number of µops
// had retired.
func (s *MPTUSeries) Record(retired uint64) {
	i := int(retired / s.BucketOps)
	for len(s.buckets) <= i {
		s.buckets = append(s.buckets, 0)
	}
	s.buckets[i]++
}

// Len returns the number of buckets.
func (s *MPTUSeries) Len() int { return len(s.buckets) }

// MPTU returns misses per 1000 µops in bucket i.
func (s *MPTUSeries) MPTU(i int) float64 {
	if i < 0 || i >= len(s.buckets) {
		return 0
	}
	return float64(s.buckets[i]) * 1000 / float64(s.BucketOps)
}

// Values renders the whole series.
func (s *MPTUSeries) Values() []float64 {
	out := make([]float64, len(s.buckets))
	for i := range out {
		out[i] = s.MPTU(i)
	}
	return out
}

// SteadyStateAfter returns the first bucket index after which every
// bucket's MPTU stays within tol (absolute) of the final tail mean — the
// warm-up detection of Section 2.2.
func (s *MPTUSeries) SteadyStateAfter(tol float64) int {
	if len(s.buckets) == 0 {
		return 0
	}
	tail := len(s.buckets) / 2
	var sum float64
	for _, v := range s.Values()[tail:] {
		sum += v
	}
	mean := sum / float64(len(s.buckets)-tail)
	last := 0
	for i, v := range s.Values() {
		if v > mean+tol || v < mean-tol {
			last = i
		}
	}
	return last + 1
}

// SeriesState is a checkpointable copy of an MPTUSeries.
type SeriesState struct {
	BucketOps uint64
	Buckets   []uint64
}

// State snapshots the series.
func (s *MPTUSeries) State() SeriesState {
	return SeriesState{BucketOps: s.BucketOps, Buckets: append([]uint64(nil), s.buckets...)}
}

// Restore overwrites the series. The bucket width must match.
func (s *MPTUSeries) Restore(st SeriesState) error {
	if st.BucketOps != s.BucketOps {
		return fmt.Errorf("stats: series state bucket width %d, series has %d", st.BucketOps, s.BucketOps)
	}
	s.buckets = append(s.buckets[:0], st.Buckets...)
	return nil
}
