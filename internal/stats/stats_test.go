package stats

import (
	"testing"
	"testing/quick"

	"repro/internal/cache"
)

func TestResetKeepsRetired(t *testing.T) {
	c := &Counters{}
	c.RetiredUops = 500
	c.L2Misses = 42
	c.PrefIssued[cache.SrcContent] = 7
	c.Reset(1234)
	if c.RetiredUops != 500 {
		t.Fatalf("retired lost: %d", c.RetiredUops)
	}
	if c.L2Misses != 0 || c.PrefIssued[cache.SrcContent] != 0 {
		t.Fatal("measurement counters survived reset")
	}
	if c.WarmCycles != 1234 {
		t.Fatalf("warm boundary = %d", c.WarmCycles)
	}
}

func TestCoverageAccuracy(t *testing.T) {
	c := &Counters{}
	c.FullHits[cache.SrcContent] = 30
	c.PartialHits[cache.SrcContent] = 10
	c.FullHits[cache.SrcStride] = 20
	c.MissNoPF = 40
	c.PrefIssued[cache.SrcContent] = 100

	if got := c.WouldMiss(); got != 100 {
		t.Fatalf("WouldMiss = %d, want 100", got)
	}
	if got := c.Coverage(cache.SrcContent); got != 0.40 {
		t.Fatalf("coverage = %v", got)
	}
	if got := c.Accuracy(cache.SrcContent); got != 0.40 {
		t.Fatalf("accuracy = %v", got)
	}
	if got := c.Coverage(cache.SrcStride); got != 0.20 {
		t.Fatalf("stride coverage = %v", got)
	}
}

func TestAdjustedMetricsSubtractOverlap(t *testing.T) {
	c := &Counters{}
	c.FullHits[cache.SrcContent] = 40
	c.MissNoPF = 60
	c.PrefIssued[cache.SrcContent] = 200
	c.CDPOverlapIssued = 50
	c.CDPOverlapUseful = 10

	if got := c.AdjustedCoverage(); got != 0.30 { // (40-10)/100
		t.Fatalf("adjusted coverage = %v", got)
	}
	if got := c.AdjustedAccuracy(); got != 0.20 { // (40-10)/(200-50)
		t.Fatalf("adjusted accuracy = %v", got)
	}
}

func TestAdjustedMetricsClamp(t *testing.T) {
	c := &Counters{}
	c.FullHits[cache.SrcContent] = 5
	c.MissNoPF = 10
	c.PrefIssued[cache.SrcContent] = 10
	c.CDPOverlapUseful = 9  // > useful
	c.CDPOverlapIssued = 20 // > issued
	if got := c.AdjustedCoverage(); got != 0 {
		t.Fatalf("over-subtracted coverage = %v", got)
	}
	if got := c.AdjustedAccuracy(); got != 0 {
		t.Fatalf("over-subtracted accuracy = %v", got)
	}
}

func TestZeroDenominators(t *testing.T) {
	c := &Counters{}
	if c.Coverage(cache.SrcContent) != 0 || c.Accuracy(cache.SrcContent) != 0 ||
		c.AdjustedCoverage() != 0 || c.AdjustedAccuracy() != 0 || c.MPTUFor(0) != 0 {
		t.Fatal("zero denominators must yield zero, not NaN")
	}
}

func TestMPTUFor(t *testing.T) {
	c := &Counters{L2Misses: 250}
	if got := c.MPTUFor(100_000); got != 2.5 {
		t.Fatalf("MPTU = %v", got)
	}
}

func TestMPTUSeriesBuckets(t *testing.T) {
	s := NewMPTUSeries(1000)
	s.Record(0)
	s.Record(999)
	s.Record(1000)
	s.Record(5500)
	if s.Len() != 6 {
		t.Fatalf("len = %d", s.Len())
	}
	if got := s.MPTU(0); got != 2.0 {
		t.Fatalf("bucket 0 MPTU = %v", got)
	}
	if got := s.MPTU(1); got != 1.0 {
		t.Fatalf("bucket 1 MPTU = %v", got)
	}
	if got := s.MPTU(5); got != 1.0 {
		t.Fatalf("bucket 5 MPTU = %v", got)
	}
	if got := s.MPTU(3); got != 0 {
		t.Fatalf("bucket 3 MPTU = %v", got)
	}
	if s.MPTU(-1) != 0 || s.MPTU(99) != 0 {
		t.Fatal("out-of-range buckets must be zero")
	}
}

func TestSteadyStateAfter(t *testing.T) {
	s := NewMPTUSeries(100)
	// Transient: 50 misses in bucket 0, 20 in bucket 1, then steady 2.
	for i := 0; i < 50; i++ {
		s.Record(10)
	}
	for i := 0; i < 20; i++ {
		s.Record(150)
	}
	for b := 2; b < 12; b++ {
		s.Record(uint64(b*100 + 5))
		s.Record(uint64(b*100 + 6))
	}
	if got := s.SteadyStateAfter(50); got != 2 {
		t.Fatalf("steady after = %d, want 2", got)
	}
}

func TestUsefulAndWouldMissConsistencyQuick(t *testing.T) {
	f := func(full, part [4]uint8, miss uint8) bool {
		c := &Counters{MissNoPF: uint64(miss)}
		var sum uint64
		for i := 0; i < NumSources; i++ {
			c.FullHits[i] = uint64(full[i])
			c.PartialHits[i] = uint64(part[i])
			sum += uint64(full[i]) + uint64(part[i])
		}
		if c.WouldMiss() != sum+uint64(miss) {
			return false
		}
		// Coverage across all sources can never exceed 1.
		var cov float64
		for s := cache.Source(0); s < cache.Source(NumSources); s++ {
			cov += c.Coverage(s)
		}
		return cov <= 1.0000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRecordMaskBuckets(t *testing.T) {
	c := &Counters{}
	c.RecordMask(0.0)
	c.RecordMask(0.05)
	c.RecordMask(0.55)
	c.RecordMask(0.999)
	c.RecordMask(1.0)
	c.RecordMask(1.5)  // clamped
	c.RecordMask(-0.1) // clamped
	if c.MaskBuckets[0] != 3 {
		t.Fatalf("bucket 0 = %d", c.MaskBuckets[0])
	}
	if c.MaskBuckets[5] != 1 || c.MaskBuckets[9] != 1 {
		t.Fatalf("mid buckets = %v", c.MaskBuckets)
	}
	if c.MaskBuckets[10] != 2 {
		t.Fatalf("full bucket = %d", c.MaskBuckets[10])
	}
	if got := c.FullyMaskedShare(); got < 0.28 || got > 0.29 {
		t.Fatalf("fully masked share = %v", got)
	}
	var empty Counters
	if empty.FullyMaskedShare() != 0 {
		t.Fatal("empty share must be 0")
	}
}
