// Package tlb implements the set-associative data TLB of the performance
// model. The baseline configuration is the paper's 64-entry, 4-way DTLB
// over 4 KiB pages; the §4.2.2 experiment sweeps the entry count up to 1024
// to show that the content prefetcher's gains are not an artifact of TLB
// prefetching.
//
// Misses are resolved by a hardware page walker modelled in the simulator:
// the walker issues real reads for the directory and table entries through
// the L2, and — per the paper — walk fill traffic bypasses the content
// prefetcher's scanner (page tables are dense with pointers and would
// trigger a combinational explosion of speculative prefetches).
package tlb

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/simtrace"
)

// Config sizes a TLB.
type Config struct {
	Entries int
	Ways    int
}

// Sets returns the implied set count.
func (c Config) Sets() int { return c.Entries / c.Ways }

// Validate checks the TLB geometry; New panics on what this rejects.
func (c Config) Validate() error {
	if c.Entries <= 0 || c.Ways <= 0 {
		return fmt.Errorf("tlb: non-positive geometry %+v", c)
	}
	sets := c.Sets()
	if sets <= 0 || sets&(sets-1) != 0 || sets*c.Ways != c.Entries {
		return fmt.Errorf("tlb: set count %d not a positive power of two dividing %d entries", sets, c.Entries)
	}
	return nil
}

type entry struct {
	vpage uint32
	frame uint32
	valid bool
	lru   uint64
}

// TLB is a set-associative translation cache keyed by virtual page number.
type TLB struct {
	cfg     Config
	setMask uint32
	entries []entry
	clock   uint64

	hits   uint64
	misses uint64

	// tr, when non-nil, receives hit/miss events. The TLB does not carry
	// the simulation clock; the tracer stamps events with the cycle the
	// memory system last announced via SetNow.
	tr *simtrace.Tracer
}

// AttachTracer wires an event tracer into the TLB (nil detaches).
func (t *TLB) AttachTracer(tr *simtrace.Tracer) { t.tr = tr }

// New builds a TLB. It panics on invalid geometry (static configuration).
func New(cfg Config) *TLB {
	sets := cfg.Sets()
	if cfg.Entries <= 0 || cfg.Ways <= 0 || sets <= 0 ||
		sets&(sets-1) != 0 || sets*cfg.Ways != cfg.Entries {
		panic(fmt.Sprintf("tlb: bad geometry %+v", cfg))
	}
	return &TLB{
		cfg:     cfg,
		setMask: uint32(sets - 1),
		entries: make([]entry, cfg.Entries),
	}
}

// Config returns the TLB geometry.
func (t *TLB) Config() Config { return t.cfg }

func (t *TLB) set(vpage uint32) []entry {
	idx := int(vpage&t.setMask) * t.cfg.Ways
	return t.entries[idx : idx+t.cfg.Ways]
}

// Lookup translates va. On a hit it returns the physical address and
// updates LRU; on a miss ok is false and the caller must walk.
func (t *TLB) Lookup(va uint32) (pa uint32, ok bool) {
	vpage := va >> mem.PageShift
	set := t.set(vpage)
	for i := range set {
		if set[i].valid && set[i].vpage == vpage {
			t.clock++
			set[i].lru = t.clock
			t.hits++
			if t.tr.Enabled() {
				t.tr.Emit(simtrace.Event{Kind: simtrace.KindTLBHit, Comp: simtrace.CompTLB, Addr: va})
			}
			return set[i].frame<<mem.PageShift | va&mem.PageMask, true
		}
	}
	t.misses++
	if t.tr.Enabled() {
		t.tr.Emit(simtrace.Event{Kind: simtrace.KindTLBMiss, Comp: simtrace.CompTLB, Addr: va})
	}
	return 0, false
}

// Probe reports whether va's page is cached without touching LRU or stats.
// The content prefetcher uses this to decide whether a candidate needs a
// speculative page walk.
func (t *TLB) Probe(va uint32) bool {
	vpage := va >> mem.PageShift
	set := t.set(vpage)
	for i := range set {
		if set[i].valid && set[i].vpage == vpage {
			return true
		}
	}
	return false
}

// Insert caches a translation produced by a page walk, evicting LRU.
func (t *TLB) Insert(va uint32, frame uint32) {
	t.insert(va, frame, false)
}

// InsertCold caches a translation at the LRU position of its set: it is
// usable immediately but is the first eviction victim. Speculative
// (prefetch-initiated) walks insert cold so that translation prefetching
// cannot displace the demand stream's hot entries — consistent with the
// paper's observation that the content prefetcher causes no measurable TLB
// pollution (Section 4.2.2).
func (t *TLB) InsertCold(va uint32, frame uint32) {
	t.insert(va, frame, true)
}

func (t *TLB) insert(va uint32, frame uint32, cold bool) {
	vpage := va >> mem.PageShift
	set := t.set(vpage)
	t.clock++
	stamp := t.clock
	if cold {
		stamp = 0
	}
	victim := 0
	for i := range set {
		if set[i].valid && set[i].vpage == vpage { // refresh
			set[i].frame = frame
			if !cold {
				set[i].lru = stamp
			}
			return
		}
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = entry{vpage: vpage, frame: frame, valid: true, lru: stamp}
}

// Stats returns lifetime hit and miss counts (Lookup only).
func (t *TLB) Stats() (hits, misses uint64) { return t.hits, t.misses }

func (t *TLB) String() string {
	return fmt.Sprintf("tlb{%d-entry %d-way}", t.cfg.Entries, t.cfg.Ways)
}

// EntryState is one valid translation in a State.
type EntryState struct {
	Index uint32 // position in the flattened entry array
	VPage uint32
	Frame uint32
	LRU   uint64
}

// State is a checkpointable deep copy of a TLB's mutable contents,
// including the lifetime hit/miss counters (which feed the simulation's
// reported Counters).
type State struct {
	Clock   uint64
	Hits    uint64
	Misses  uint64
	Entries []EntryState
}

// State snapshots the TLB.
func (t *TLB) State() State {
	st := State{Clock: t.clock, Hits: t.hits, Misses: t.misses}
	for i := range t.entries {
		if t.entries[i].valid {
			st.Entries = append(st.Entries, EntryState{
				Index: uint32(i),
				VPage: t.entries[i].vpage,
				Frame: t.entries[i].frame,
				LRU:   t.entries[i].lru,
			})
		}
	}
	return st
}

// Restore overwrites the TLB with a previously captured State. The TLB must
// have the geometry the state was captured from.
func (t *TLB) Restore(st State) error {
	for i := range t.entries {
		t.entries[i] = entry{}
	}
	for _, es := range st.Entries {
		if int(es.Index) >= len(t.entries) {
			return fmt.Errorf("tlb: state index %d outside %d entries (geometry mismatch)", es.Index, len(t.entries))
		}
		t.entries[es.Index] = entry{vpage: es.VPage, frame: es.Frame, valid: true, lru: es.LRU}
	}
	t.clock = st.Clock
	t.hits = st.Hits
	t.misses = st.Misses
	return nil
}
