package tlb

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestMissThenHit(t *testing.T) {
	tb := New(Config{Entries: 64, Ways: 4})
	va := uint32(0x1000_2345)
	if _, ok := tb.Lookup(va); ok {
		t.Fatal("empty TLB hit")
	}
	tb.Insert(va, 500)
	pa, ok := tb.Lookup(va)
	if !ok {
		t.Fatal("inserted translation missed")
	}
	want := uint32(500)<<mem.PageShift | va&mem.PageMask
	if pa != want {
		t.Fatalf("pa = %#x, want %#x", pa, want)
	}
	// Same page, different offset.
	pa2, ok := tb.Lookup(va &^ mem.PageMask)
	if !ok || pa2 != uint32(500)<<mem.PageShift {
		t.Fatalf("same-page lookup = %#x, %v", pa2, ok)
	}
	hits, misses := tb.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("stats = %d hits, %d misses", hits, misses)
	}
}

func TestProbeDoesNotCount(t *testing.T) {
	tb := New(Config{Entries: 64, Ways: 4})
	tb.Insert(0x5000, 7)
	if !tb.Probe(0x5abc) {
		t.Fatal("probe missed resident page")
	}
	if tb.Probe(0x9000) {
		t.Fatal("probe hit absent page")
	}
	if h, m := tb.Stats(); h != 0 || m != 0 {
		t.Fatalf("probe touched stats: %d/%d", h, m)
	}
}

func TestLRUWithinSet(t *testing.T) {
	tb := New(Config{Entries: 8, Ways: 2}) // 4 sets
	// Pages 0, 4, 8 map to set 0.
	p := func(i uint32) uint32 { return i << mem.PageShift }
	tb.Insert(p(0), 100)
	tb.Insert(p(4), 104)
	tb.Lookup(p(0)) // page 0 MRU
	tb.Insert(p(8), 108)
	if _, ok := tb.Lookup(p(4)); ok {
		t.Fatal("LRU victim survived")
	}
	if _, ok := tb.Lookup(p(0)); !ok {
		t.Fatal("MRU entry evicted")
	}
	if _, ok := tb.Lookup(p(8)); !ok {
		t.Fatal("new entry missing")
	}
}

func TestInsertRefresh(t *testing.T) {
	tb := New(Config{Entries: 4, Ways: 4})
	tb.Insert(0x1000, 1)
	tb.Insert(0x1000, 2) // remap
	pa, ok := tb.Lookup(0x1000)
	if !ok || pa>>mem.PageShift != 2 {
		t.Fatalf("refresh lost: %#x %v", pa, ok)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, cfg := range []Config{{0, 4}, {64, 0}, {96, 4}, {6, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("geometry %+v accepted", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

// Property: inserting then looking up the same page always succeeds and
// preserves the page offset.
func TestInsertLookupQuick(t *testing.T) {
	f := func(va uint32, frame uint32) bool {
		tb := New(Config{Entries: 64, Ways: 4})
		frame &= 0x000F_FFFF
		tb.Insert(va, frame)
		pa, ok := tb.Lookup(va)
		return ok && pa == frame<<mem.PageShift|va&mem.PageMask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a TLB with E entries holds at most E distinct pages.
func TestCapacityQuick(t *testing.T) {
	f := func(seed uint32) bool {
		tb := New(Config{Entries: 16, Ways: 4})
		for i := uint32(0); i < 100; i++ {
			tb.Insert((seed+i*37)<<mem.PageShift, i)
		}
		resident := 0
		for i := uint32(0); i < 200; i++ {
			if tb.Probe((seed + i) << mem.PageShift) {
				resident++
			}
		}
		return resident <= 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
