package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/mem"
)

// Checkpoint is the LIT-like unit the simulator executes: a snapshot of
// memory (with its page table already materialised) plus the correct-path
// µop trace captured over it.
type Checkpoint struct {
	Name  string
	Space *mem.AddressSpace
	Trace *Trace
	// Instrs is the logical (IA-32-style) instruction count behind the
	// µop trace; Table 2 reports both.
	Instrs int
}

// File format: all integers little-endian.
//
//	magic "CDPT" | version u32 | nameLen u32 | name bytes
//	opCount u64 | ops (16 bytes each: pc, addr, kind, src1, src2, dst, flags, pad3)
//	pageCount u64 | pages (pageNum u32 + 4096 raw bytes each)
//	mapCount u64 | mappings (vpage u32 + frame u32 each)
const (
	magic       = "CDPT"
	fileVersion = 1
	opRecSize   = 16
)

// WriteTo serialises the checkpoint. Only the raw memory pages and the
// virtual-to-frame map are stored; the page-table pages are included among
// the raw pages (they live in the image), so a restored checkpoint walks
// identically.
func (c *Checkpoint) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(data any) error {
		if err := binary.Write(bw, binary.LittleEndian, data); err != nil {
			return err
		}
		n += int64(binary.Size(data))
		return nil
	}
	if _, err := bw.WriteString(magic); err != nil {
		return n, err
	}
	n += int64(len(magic))
	if err := write(uint32(fileVersion)); err != nil {
		return n, err
	}
	name := []byte(c.Name)
	if err := write(uint32(len(name))); err != nil {
		return n, err
	}
	if _, err := bw.Write(name); err != nil {
		return n, err
	}
	n += int64(len(name))

	if err := write(uint64(c.Instrs)); err != nil {
		return n, err
	}
	ops := c.Trace.Ops
	if err := write(uint64(len(ops))); err != nil {
		return n, err
	}
	var rec [opRecSize]byte
	for i := range ops {
		op := &ops[i]
		binary.LittleEndian.PutUint32(rec[0:], op.PC)
		binary.LittleEndian.PutUint32(rec[4:], op.Addr)
		rec[8] = uint8(op.Kind)
		rec[9] = op.Src1
		rec[10] = op.Src2
		rec[11] = op.Dst
		rec[12] = 0
		if op.Taken {
			rec[12] = 1
		}
		rec[13], rec[14], rec[15] = 0, 0, 0
		if _, err := bw.Write(rec[:]); err != nil {
			return n, err
		}
		n += opRecSize
	}

	img := c.Space.Img
	pageNums := img.PageNumbers()
	if err := write(uint64(len(pageNums))); err != nil {
		return n, err
	}
	buf := make([]byte, mem.PageSize)
	for _, pn := range pageNums {
		if err := write(pn); err != nil {
			return n, err
		}
		img.ReadBytes(pn<<mem.PageShift, buf)
		if _, err := bw.Write(buf); err != nil {
			return n, err
		}
		n += int64(len(buf))
	}

	maps := c.Space.Mappings()
	if err := write(uint64(len(maps))); err != nil {
		return n, err
	}
	for _, m := range maps {
		if err := write(m.VPage); err != nil {
			return n, err
		}
		if err := write(m.Frame); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadCheckpoint deserialises a checkpoint written by WriteTo.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(m[:]) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", m[:])
	}
	var version, nameLen uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != fileVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", version)
	}
	if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
		return nil, err
	}
	if nameLen > 1<<20 {
		return nil, fmt.Errorf("trace: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}

	var instrs, opCount uint64
	if err := binary.Read(br, binary.LittleEndian, &instrs); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &opCount); err != nil {
		return nil, err
	}
	// Grow the op slice as records actually arrive rather than trusting the
	// header's count: a corrupt (or hostile) opCount would otherwise demand
	// an arbitrarily large upfront allocation before the first read fails.
	ops := make([]Op, 0, min(opCount, 1<<16))
	var rec [opRecSize]byte
	for i := uint64(0); i < opCount; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: op %d: %w", i, err)
		}
		ops = append(ops, Op{
			PC:    binary.LittleEndian.Uint32(rec[0:]),
			Addr:  binary.LittleEndian.Uint32(rec[4:]),
			Kind:  Kind(rec[8]),
			Src1:  rec[9],
			Src2:  rec[10],
			Dst:   rec[11],
			Taken: rec[12] != 0,
		})
	}

	space := mem.NewAddressSpace()
	var pageCount uint64
	if err := binary.Read(br, binary.LittleEndian, &pageCount); err != nil {
		return nil, err
	}
	buf := make([]byte, mem.PageSize)
	for i := uint64(0); i < pageCount; i++ {
		var pn uint32
		if err := binary.Read(br, binary.LittleEndian, &pn); err != nil {
			return nil, err
		}
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, err
		}
		space.Img.WriteBytes(pn<<mem.PageShift, buf)
	}

	var mapCount uint64
	if err := binary.Read(br, binary.LittleEndian, &mapCount); err != nil {
		return nil, err
	}
	for i := uint64(0); i < mapCount; i++ {
		var vpage, frame uint32
		if err := binary.Read(br, binary.LittleEndian, &vpage); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &frame); err != nil {
			return nil, err
		}
		space.RestoreMapping(vpage, frame)
	}

	return &Checkpoint{Name: string(name), Space: space, Trace: &Trace{Ops: ops}, Instrs: int(instrs)}, nil
}
