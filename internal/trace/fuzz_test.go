package trace

import (
	"bytes"
	"testing"

	"repro/internal/mem"
)

// fuzzSeedCheckpoint builds a tiny but fully populated checkpoint so the
// fuzzer starts from a structurally valid input.
func fuzzSeedCheckpoint() *Checkpoint {
	space := mem.NewAddressSpace()
	space.EnsureMapped(0x1000_0000, 2*mem.PageSize)
	space.Img.Write32(0x1000_0000, 0x1000_0040)
	b := NewBuilder()
	b.Load(0x400, 1, 2, 0x1000_0000)
	b.Int(0x404, 3, 1, NoReg)
	b.Store(0x408, 3, 2, 0x1000_0004)
	b.Branch(0x40c, 3, true)
	return &Checkpoint{Name: "fuzz-seed", Space: space, Trace: b.Trace(), Instrs: 2}
}

// FuzzReadCheckpoint throws arbitrary bytes at the checkpoint decoder. The
// decoder must never panic or over-allocate on corrupt input, and anything
// it accepts must survive a write/read round trip unchanged in its header
// fields and op stream.
func FuzzReadCheckpoint(f *testing.F) {
	var seed bytes.Buffer
	if _, err := fuzzSeedCheckpoint().WriteTo(&seed); err != nil {
		f.Fatalf("serialising seed: %v", err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte("CDPT"))
	f.Add([]byte("CDPT\x01\x00\x00\x00\x00\x00\x00\x00"))
	// A well-formed empty-name header claiming ~2^40 ops with no payload:
	// the decoder must fail cleanly, not allocate for the claimed count.
	// Layout: magic(4) version(4) nameLen(4) instrs(8) opCount(8).
	huge := append([]byte("CDPT\x01\x00\x00\x00\x00\x00\x00\x00"), make([]byte, 16)...)
	huge[20] = 0xff // opCount low byte
	huge[25] = 0x01 // opCount bit 40
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := ReadCheckpoint(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if _, err := ck.WriteTo(&out); err != nil {
			t.Fatalf("re-serialising accepted checkpoint: %v", err)
		}
		ck2, err := ReadCheckpoint(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("round trip of accepted checkpoint failed: %v", err)
		}
		if ck2.Name != ck.Name || ck2.Instrs != ck.Instrs {
			t.Fatalf("round trip changed header: %q/%d vs %q/%d", ck.Name, ck.Instrs, ck2.Name, ck2.Instrs)
		}
		if len(ck2.Trace.Ops) != len(ck.Trace.Ops) {
			t.Fatalf("round trip changed op count: %d vs %d", len(ck.Trace.Ops), len(ck2.Trace.Ops))
		}
		for i := range ck.Trace.Ops {
			if ck.Trace.Ops[i] != ck2.Trace.Ops[i] {
				t.Fatalf("round trip changed op %d: %+v vs %+v", i, ck.Trace.Ops[i], ck2.Trace.Ops[i])
			}
		}
	})
}
