// Package trace defines the µop trace format the performance simulator
// executes. A trace plays the role of the paper's LIT (Long Instruction
// Trace): not a bare address stream but a checkpoint — a memory image plus
// the correct-path µop sequence, with enough register-dependence information
// for an out-of-order timing model to reconstruct the program's true
// critical path (pointer-chasing loads must serialise through their
// producing loads).
package trace

import "fmt"

// Kind classifies a µop.
type Kind uint8

const (
	// KInt is a single-cycle integer ALU µop.
	KInt Kind = iota
	// KFP is a floating-point µop (3-cycle latency in the model).
	KFP
	// KLoad reads the 32-bit word at Addr.
	KLoad
	// KStore writes the 32-bit word at Addr.
	KStore
	// KBranch is a conditional branch; Taken records the correct-path
	// outcome used to train and check the branch predictor.
	KBranch
)

func (k Kind) String() string {
	switch k {
	case KInt:
		return "int"
	case KFP:
		return "fp"
	case KLoad:
		return "load"
	case KStore:
		return "store"
	case KBranch:
		return "branch"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// NumRegs is the size of the architectural register file visible in traces.
const NumRegs = 16

// NoReg marks an unused register operand.
const NoReg uint8 = 0xFF

// Op is one µop. 20 bytes; traces of a few million µops stay cheap.
type Op struct {
	PC    uint32
	Addr  uint32 // effective virtual address for loads/stores
	Kind  Kind
	Src1  uint8 // NoReg if unused
	Src2  uint8 // NoReg if unused
	Dst   uint8 // NoReg if none
	Taken bool  // branches only
}

// Trace is an in-memory µop sequence.
type Trace struct {
	Ops []Op
}

// Len returns the number of µops.
func (t *Trace) Len() int { return len(t.Ops) }

// Builder accumulates a trace with convenience emitters. PCs are synthetic:
// callers pin a PC per static emission site so the stride prefetcher and
// gshare see stable instruction identities.
type Builder struct {
	t Trace
}

// NewBuilder returns an empty trace builder.
func NewBuilder() *Builder { return &Builder{} }

// Emit appends a raw µop.
func (b *Builder) Emit(op Op) { b.t.Ops = append(b.t.Ops, op) }

// Int appends an integer ALU µop dst = f(src1, src2).
func (b *Builder) Int(pc uint32, dst, src1, src2 uint8) {
	b.Emit(Op{PC: pc, Kind: KInt, Dst: dst, Src1: src1, Src2: src2})
}

// FP appends a floating-point µop.
func (b *Builder) FP(pc uint32, dst, src1, src2 uint8) {
	b.Emit(Op{PC: pc, Kind: KFP, Dst: dst, Src1: src1, Src2: src2})
}

// Load appends a load of addr into dst, address-dependent on addrSrc
// (NoReg if the address needs no register, e.g. absolute).
func (b *Builder) Load(pc uint32, dst, addrSrc uint8, addr uint32) {
	b.Emit(Op{PC: pc, Kind: KLoad, Dst: dst, Src1: addrSrc, Src2: NoReg, Addr: addr})
}

// Store appends a store of valSrc to addr, address-dependent on addrSrc.
func (b *Builder) Store(pc uint32, valSrc, addrSrc uint8, addr uint32) {
	b.Emit(Op{PC: pc, Kind: KStore, Dst: NoReg, Src1: valSrc, Src2: addrSrc, Addr: addr})
}

// Branch appends a conditional branch whose outcome depends on condSrc.
func (b *Builder) Branch(pc uint32, condSrc uint8, taken bool) {
	b.Emit(Op{PC: pc, Kind: KBranch, Dst: NoReg, Src1: condSrc, Src2: NoReg, Taken: taken})
}

// Len returns the number of µops emitted so far.
func (b *Builder) Len() int { return len(b.t.Ops) }

// Trace finalises and returns the built trace. The builder remains usable;
// further emissions extend the same trace.
func (b *Builder) Trace() *Trace { return &b.t }

// Mix summarises the µop composition of a trace.
type Mix struct {
	Int, FP, Load, Store, Branch int
}

// Total returns the µop count.
func (m Mix) Total() int { return m.Int + m.FP + m.Load + m.Store + m.Branch }

// MixOf tallies the composition of t.
func MixOf(t *Trace) Mix {
	var m Mix
	for i := range t.Ops {
		switch t.Ops[i].Kind {
		case KInt:
			m.Int++
		case KFP:
			m.FP++
		case KLoad:
			m.Load++
		case KStore:
			m.Store++
		case KBranch:
			m.Branch++
		}
	}
	return m
}

func (m Mix) String() string {
	return fmt.Sprintf("mix{int:%d fp:%d ld:%d st:%d br:%d}", m.Int, m.FP, m.Load, m.Store, m.Branch)
}
