package trace

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestBuilderEmitters(t *testing.T) {
	b := NewBuilder()
	b.Int(0x100, 1, 2, 3)
	b.FP(0x104, 4, 5, NoReg)
	b.Load(0x108, 6, 1, 0xDEAD_0000)
	b.Store(0x10C, 6, 1, 0xDEAD_0004)
	b.Branch(0x110, 6, true)
	tr := b.Trace()
	if tr.Len() != 5 {
		t.Fatalf("len = %d", tr.Len())
	}
	want := []Kind{KInt, KFP, KLoad, KStore, KBranch}
	for i, k := range want {
		if tr.Ops[i].Kind != k {
			t.Fatalf("op %d kind = %v, want %v", i, tr.Ops[i].Kind, k)
		}
	}
	if !tr.Ops[4].Taken {
		t.Fatal("branch outcome lost")
	}
	if tr.Ops[2].Addr != 0xDEAD_0000 || tr.Ops[2].Dst != 6 {
		t.Fatal("load fields lost")
	}
	m := MixOf(tr)
	if m != (Mix{Int: 1, FP: 1, Load: 1, Store: 1, Branch: 1}) {
		t.Fatalf("mix = %+v", m)
	}
	if m.Total() != 5 {
		t.Fatalf("total = %d", m.Total())
	}
}

func randomOps(rng *rand.Rand, n int) []Op {
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = Op{
			PC:    rng.Uint32(),
			Addr:  rng.Uint32(),
			Kind:  Kind(rng.Intn(5)),
			Src1:  uint8(rng.Intn(17)),
			Src2:  uint8(rng.Intn(17)),
			Dst:   uint8(rng.Intn(17)),
			Taken: rng.Intn(2) == 1,
		}
	}
	return ops
}

func TestCheckpointRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	space := mem.NewAddressSpace()
	space.EnsureMapped(0x1000_0000, 3*mem.PageSize)
	space.Img.Write32(0x1000_0010, 0xCAFE_BABE)
	space.Img.Write32(0x1000_2FFC, 0x1234_5678)

	ck := &Checkpoint{
		Name:  "unit",
		Space: space,
		Trace: &Trace{Ops: randomOps(rng, 1000)},
	}
	var buf bytes.Buffer
	if _, err := ck.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "unit" {
		t.Fatalf("name = %q", got.Name)
	}
	if len(got.Trace.Ops) != 1000 {
		t.Fatalf("ops = %d", len(got.Trace.Ops))
	}
	for i := range ck.Trace.Ops {
		if got.Trace.Ops[i] != ck.Trace.Ops[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, got.Trace.Ops[i], ck.Trace.Ops[i])
		}
	}
	if v := got.Space.Img.Read32(0x1000_0010); v != 0xCAFE_BABE {
		t.Fatalf("memory word lost: %#x", v)
	}
	// Translations must agree between original and restored spaces.
	for _, va := range []uint32{0x1000_0000, 0x1000_1234, 0x1000_2FFC} {
		want, ok1 := space.Translate(va)
		gotPA, ok2 := got.Space.Translate(va)
		if !ok1 || !ok2 || want != gotPA {
			t.Fatalf("translate(%#x): orig=%#x(%v) restored=%#x(%v)", va, want, ok1, gotPA, ok2)
		}
	}
	// The hardware walk must also work on the restored image.
	_, frame, ok := got.Space.Walk(0x1000_1000)
	if !ok {
		t.Fatal("restored walk failed")
	}
	if pa, _ := got.Space.Translate(0x1000_1000); frame<<mem.PageShift != pa {
		t.Fatal("restored walk disagrees with translate")
	}
}

func TestRestoredSpaceStillAllocates(t *testing.T) {
	space := mem.NewAddressSpace()
	space.EnsureMapped(0x2000_0000, 2*mem.PageSize)
	ck := &Checkpoint{Name: "x", Space: space, Trace: &Trace{}}
	var buf bytes.Buffer
	if _, err := ck.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Mapping a new page after restore must not collide with restored frames.
	oldPA, _ := got.Space.Translate(0x2000_0000)
	got.Space.MapPage(0x3000_0000)
	newPA, ok := got.Space.Translate(0x3000_0000)
	if !ok {
		t.Fatal("post-restore mapping failed")
	}
	if newPA>>mem.PageShift == oldPA>>mem.PageShift {
		t.Fatal("post-restore frame collides with restored frame")
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	if _, err := ReadCheckpoint(bytes.NewReader([]byte("NOPE1234"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadCheckpoint(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestOpEncodeQuick(t *testing.T) {
	f := func(pc, addr uint32, kind uint8, s1, s2, d uint8, taken bool) bool {
		op := Op{PC: pc, Addr: addr, Kind: Kind(kind % 5), Src1: s1, Src2: s2, Dst: d, Taken: taken}
		ck := &Checkpoint{Name: "q", Space: mem.NewAddressSpace(), Trace: &Trace{Ops: []Op{op}}}
		var buf bytes.Buffer
		if _, err := ck.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadCheckpoint(&buf)
		if err != nil {
			return false
		}
		return got.Trace.Ops[0] == op
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
