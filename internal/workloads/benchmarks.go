package workloads

import (
	"fmt"
	"sync"

	"repro/internal/heap"
	"repro/internal/trace"
)

// Spec is one named benchmark of Table 2.
type Spec struct {
	Name  string
	Suite string
	build func(g *Gen)
}

// Generate builds the benchmark's checkpoint: data structures in memory
// plus the µop trace over them.
func (s Spec) Generate(cfg GenConfig) *trace.Checkpoint {
	if cfg.Ops <= 0 {
		cfg.Ops = DefaultOps
	}
	g := newGen(cfg)
	s.build(g)
	return &trace.Checkpoint{
		Name:   s.Name,
		Space:  g.AS,
		Trace:  g.B.Trace(),
		Instrs: g.Instr,
	}
}

// DefaultOps is the default trace budget. The paper runs 30 M-instruction
// LITs; this reproduction defaults to ~1.2 M µops per benchmark so the full
// experiment matrix runs in minutes, and reports its own Table 2.
const DefaultOps = 1_200_000

// All returns the fifteen benchmarks in Table 2 order.
func All() []Spec {
	return []Spec{
		{"b2b", "Internet", buildB2B},
		{"b2c", "Internet", buildB2C},
		{"quake", "Multimedia", buildQuake},
		{"speech", "Productivity", buildSpeech},
		{"rc3", "Productivity", buildRC3},
		{"creation", "Productivity", buildCreation},
		{"tpcc-1", "Server", buildTPCC(1)},
		{"tpcc-2", "Server", buildTPCC(2)},
		{"tpcc-3", "Server", buildTPCC(3)},
		{"tpcc-4", "Server", buildTPCC(4)},
		{"verilog-func", "Workstation", buildVerilogFunc},
		{"verilog-gate", "Workstation", buildVerilogGate},
		{"proE", "Workstation", buildProE},
		{"slsb", "Workstation", buildSLSB},
		{"specjbb-vsnet", "Runtime", buildSpecJBB},
	}
}

// ByName finds a benchmark.
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workloads: unknown benchmark %q", name)
}

// SuiteRepresentatives returns one benchmark per suite (the Figure 1
// readability subset).
func SuiteRepresentatives() []Spec {
	seen := map[string]bool{}
	var out []Spec
	for _, s := range All() {
		if !seen[s.Suite] {
			seen[s.Suite] = true
			out = append(out, s)
		}
	}
	return out
}

// cachedCheckpoint memoises generation: experiments run many configurations
// over the same checkpoint, and the simulator never mutates it.
var (
	ckMu    sync.Mutex
	ckCache = map[string]*trace.Checkpoint{}
)

// Checkpoint returns a (possibly cached) checkpoint for the benchmark at
// the given budget.
func Checkpoint(s Spec, ops int) *trace.Checkpoint {
	if ops <= 0 {
		ops = DefaultOps
	}
	key := fmt.Sprintf("%s/%d", s.Name, ops)
	ckMu.Lock()
	defer ckMu.Unlock()
	if ck, ok := ckCache[key]; ok {
		return ck
	}
	ck := s.Generate(GenConfig{Ops: ops, Seed: int64(len(s.Name))*7919 + 13})
	ckCache[key] = ck
	return ck
}

// ---------------------------------------------------------------------------
// Benchmark definitions. Sizes are tuned so the population spans the
// paper's MPTU and speedup ranges on ~1.2 M-µop traces; EXPERIMENTS.md
// records the measured values.

// buildB2B: internet business logic — order lists with payload records,
// session hash, some streaming. Moderate MPTU, strong content sensitivity.
func buildB2B(g *Gen) {
	orders := heap.BuildList(g.Heap, g.Rng, heap.ListSpec{
		Nodes: 14_000, NodeSize: 64, NextOff: 0, Fill: heap.DefaultFill})
	pay := g.AttachPayloads(orders.Nodes, 8, 128)
	sessions := heap.BuildHash(g.Heap, g.Rng, heap.HashSpec{
		Buckets: 2048, Entries: 10_000, NodeSize: 48, NextOff: 4, KeyOff: 0, Fill: heap.DefaultFill})
	// Stack-like frame chain in the all-ones region: only reachable by
	// the prefetcher through the filter bits.
	frames := heap.BuildList(g.High, g.Rng, heap.ListSpec{
		Nodes: 3_000, NodeSize: 64, NextOff: 0, Fill: heap.DefaultFill})
	log := heap.BuildArray(g.Data, g.Rng, 4096, 64, heap.Fill{SmallInts: 1})
	var ocur, fcur int
	for !g.Done() {
		g.WalkList(0x1000, orders, WalkOpts{
			PayloadOff: 8, Payloads: pay, PayloadLines: 2,
			Work: 60, DataBranch: true, StoreEvery: 6, MaxNodes: 400, Cursor: &ocur,
		})
		for i := 0; i < 12 && !g.Done(); i++ {
			g.LookupHash(0x2000, sessions, WalkOpts{Work: 30})
		}
		g.WalkList(0x5000, frames, WalkOpts{Work: 40, MaxNodes: 300, Cursor: &fcur})
		g.ArrayPass(0x3000, log, 8)
		g.Compute(0x4000, 500)
	}
}

// buildB2C: small-working-set storefront — everything fits in the L2, so
// only compulsory misses remain (MPTU ~0.1 at both cache sizes).
func buildB2C(g *Gen) {
	catalog := heap.BuildHash(g.Heap, g.Rng, heap.HashSpec{
		Buckets: 512, Entries: 1_200, NodeSize: 48, NextOff: 4, KeyOff: 0, Fill: heap.DefaultFill})
	basket := heap.BuildList(g.Heap, g.Rng, heap.ListSpec{
		Nodes: 400, NodeSize: 64, NextOff: 0, Fill: heap.DefaultFill})
	g.TouchLines(0x9000, catalog.BucketBase, uint32(catalog.Buckets)*4)
	for _, n := range collectHashNodes(g, catalog) {
		g.TouchLines(0x9010, n, catalog.NodeSize)
	}
	g.TouchList(0x9020, basket, nil, 0)
	history := heap.BuildArray(g.Data, g.Rng, 30_000, 64, heap.Fill{Random: 1})
	for !g.Done() {
		for i := 0; i < 20 && !g.Done(); i++ {
			g.LookupHash(0x1000, catalog, WalkOpts{Work: 60})
		}
		g.WalkList(0x2000, basket, WalkOpts{Work: 20})
		g.RandomArrayTouch(0x5000, history, 10, 60)
		g.Compute(0x3000, 5000)
		g.ComputeFP(0x4000, 500)
	}
}

// buildQuake: game/multimedia — dominated by streaming over level and
// frame data (2.5 MiB: misses at 1 MiB, fits in 4 MiB), with a small
// entity list. Stride prefetcher territory.
func buildQuake(g *Gen) {
	level := heap.BuildArray(g.Data, g.Rng, 11_000, 64, heap.Fill{Random: 0.5})
	frame := heap.BuildArray(g.Data, g.Rng, 7_000, 64, heap.Fill{Random: 0.5})
	entities := heap.BuildList(g.Heap, g.Rng, heap.ListSpec{
		Nodes: 900, NodeSize: 64, NextOff: 0, Fill: heap.DefaultFill})
	g.TouchList(0x9000, entities, nil, 0)
	for !g.Done() {
		g.ArrayPass(0x1000, level, 16)
		g.ComputeFP(0x2000, 900)
		g.ArrayPass(0x3000, frame, 12)
		g.WalkList(0x4000, entities, WalkOpts{Work: 40, StoreEvery: 4})
	}
}

// buildSpeech: speech recognition — lexicon-tree searches over a ~2.5 MiB
// model with per-node scoring work.
func buildSpeech(g *Gen) {
	lexicon := heap.BuildTree(g.Heap, g.Rng, heap.TreeSpec{
		Nodes: 70_000, NodeSize: 32, KeyOff: 0, LeftOff: 8, RightOff: 12, Fill: heap.DefaultFill})
	scores := heap.BuildArray(g.Data, g.Rng, 2048, 64, heap.Fill{Random: 1})
	for !g.Done() {
		for i := 0; i < 24 && !g.Done(); i++ {
			key := uint32(g.Rng.Intn(lexicon.Count))
			g.SearchTree(0x1000, lexicon, key, WalkOpts{Work: 50})
		}
		g.ArrayPass(0x2000, scores, 10)
		g.ComputeFP(0x3000, 800)
	}
}

// buildRC3: productivity app — small mixed structures, mostly resident;
// light miss traffic.
func buildRC3(g *Gen) {
	// Packed, 2-byte-aligned document nodes: a footprint-optimising
	// compiler's layout. Their pointers are invisible to a 4-byte scan
	// step or a 2-bit alignment requirement (the Figure 8 trade-off).
	doc := heap.BuildList(g.Heap, g.Rng, heap.ListSpec{
		Nodes: 5_000, NodeSize: 90, NextOff: 0, Align: 2, Fill: heap.DefaultFill})
	index := heap.BuildArray(g.Data, g.Rng, 2_000, 64, heap.Fill{SmallInts: 1})
	g.TouchList(0x9000, doc, nil, 0)
	g.TouchLines(0x9010, index.Base, uint32(index.Elems)*index.ElemSize)
	undo := heap.BuildArray(g.Data, g.Rng, 30_000, 64, heap.Fill{Random: 1})
	var dcur int
	for !g.Done() {
		g.WalkList(0x1000, doc, WalkOpts{Work: 120, MaxNodes: 1000, Cursor: &dcur})
		g.RandomArrayTouch(0x5000, undo, 25, 60)
		g.ArrayPass(0x2000, index, 12)
		g.Compute(0x3000, 5000)
	}
}

// buildCreation: content creation — medium lists with payloads, FP filter
// kernels over arrays.
func buildCreation(g *Gen) {
	scene := heap.BuildList(g.Heap, g.Rng, heap.ListSpec{
		Nodes: 7_000, NodeSize: 62, NextOff: 0, Align: 2, Fill: heap.DefaultFill})
	pay := g.AttachPayloads(scene.Nodes, 8, 64)
	pixels := heap.BuildArray(g.Data, g.Rng, 3_000, 64, heap.Fill{Random: 1})
	g.TouchList(0x9000, scene, pay, 64)
	g.TouchLines(0x9010, pixels.Base, uint32(pixels.Elems)*pixels.ElemSize)
	var scur int
	for !g.Done() {
		g.WalkList(0x1000, scene, WalkOpts{
			PayloadOff: 8, Payloads: pay, Work: 140, MaxNodes: 800, Cursor: &scur})
		g.ArrayPass(0x2000, pixels, 10)
		g.ComputeFP(0x3000, 1800)
	}
}

// buildTPCC: OLTP — the canonical content-prefetcher workload. Each
// transaction probes a hash index, follows the bucket chain, then reads a
// multi-line row (256 B) through a payload pointer and updates it. Four
// variants differ in table size and row work, like the paper's four LITs.
func buildTPCC(variant int) func(*Gen) {
	return func(g *Gen) {
		entries := 20_000 + variant*3_000
		index := heap.BuildHash(g.Heap, g.Rng, heap.HashSpec{
			Buckets: 1024, Entries: entries, NodeSize: 192, NextOff: 4, KeyOff: 0, Fill: heap.DefaultFill})
		// Rows: every index node points at a 256-byte row (4 lines).
		nodes := collectHashNodes(g, index)
		rows := g.AttachPayloads(nodes, 8, 256)
		// Global lock/latch table in the all-zeros region (filter-bit
		// territory).
		locks := heap.BuildList(g.Low, g.Rng, heap.ListSpec{
			Nodes: 2_000, NodeSize: 64, NextOff: 0, Fill: heap.DefaultFill})
		work := 280 + variant*20
		var lcur int
		for !g.Done() {
			for i := 0; i < 10 && !g.Done(); i++ {
				g.LookupHash(0x1000, index, WalkOpts{
					PayloadOff: 8, Payloads: rows, PayloadLines: 3,
					Work: work, DataBranch: true, StoreEvery: 2,
					ChainProbes: 5,
				})
			}
			g.WalkList(0x3000, locks, WalkOpts{Work: 60, MaxNodes: 150, Cursor: &lcur})
			g.Compute(0x2000, 1100)
		}
	}
}

// collectHashNodes gathers every chain node address of a hash table (for
// payload attachment).
func collectHashNodes(g *Gen, h *heap.Hash) []uint32 {
	var nodes []uint32
	for b := 0; b < h.Buckets; b++ {
		cur := g.AS.Img.Read32(h.BucketBase + uint32(b)*4)
		for cur != 0 {
			nodes = append(nodes, cur)
			cur = g.AS.Img.Read32(cur + h.NextOff)
		}
	}
	return nodes
}

// buildVerilogFunc: functional simulation — event-driven walks over a
// multi-megabyte netlist with moderate evaluation work per node. The
// netlist is packed (2-byte-aligned 62-byte nodes, a footprint-optimised
// layout): its pointers are only reachable with a 2-byte scan step and at
// most one alignment bit, giving Figure 8 its trade-off.
func buildVerilogFunc(g *Gen) {
	netlist := heap.BuildList(g.Heap, g.Rng, heap.ListSpec{
		Nodes: 30_000, NodeSize: 62, NextOff: 0, Align: 2, Fill: heap.DefaultFill})
	pay := g.AttachPayloads(netlist.Nodes, 8, 64)
	events := heap.BuildArray(g.Data, g.Rng, 30_000, 64, heap.Fill{Random: 1})
	var ncur int
	for !g.Done() {
		g.WalkList(0x1000, netlist, WalkOpts{
			PayloadOff: 8, Payloads: pay, Work: 200, DataBranch: false, MaxNodes: 4_000, Cursor: &ncur})
		g.RandomArrayTouch(0x3000, events, 180, 40)
		g.Compute(0x2000, 400)
	}
}

// buildVerilogGate: gate-level simulation — the paper's most memory-bound
// benchmark (MPTU ~24). A huge scattered netlist walked with almost no
// work per gate: miss after miss.
func buildVerilogGate(g *Gen) {
	netlist := heap.BuildList(g.Heap, g.Rng, heap.ListSpec{
		Nodes: 150_000, NodeSize: 64, NextOff: 0, Fill: heap.DefaultFill})
	for !g.Done() {
		g.WalkList(0x1000, netlist, WalkOpts{Work: 40, DataBranch: false})
	}
}

// buildProE: CAD — compute-bound geometry kernels; tiny miss traffic.
func buildProE(g *Gen) {
	mesh := heap.BuildArray(g.Data, g.Rng, 6_000, 64, heap.Fill{Random: 1})
	features := heap.BuildList(g.Heap, g.Rng, heap.ListSpec{
		Nodes: 1_200, NodeSize: 64, NextOff: 0, Fill: heap.DefaultFill})
	g.TouchLines(0x9000, mesh.Base, uint32(mesh.Elems)*mesh.ElemSize)
	g.TouchList(0x9010, features, nil, 0)
	sweep := heap.BuildArray(g.Data, g.Rng, 30_000, 64, heap.Fill{Random: 1})
	var fcur int
	for !g.Done() {
		g.ArrayPass(0x1000, mesh, 30)
		g.ComputeFP(0x2000, 5000)
		g.WalkList(0x3000, features, WalkOpts{Work: 80, MaxNodes: 200, Cursor: &fcur})
		g.RandomArrayTouch(0x5000, sweep, 15, 80)
		g.Compute(0x4000, 2000)
	}
}

// buildSLSB: workstation list-processing — big lists with payload records
// and store-backs; high MPTU, strongly content-sensitive.
func buildSLSB(g *Gen) {
	records := heap.BuildList(g.Heap, g.Rng, heap.ListSpec{
		Nodes: 18_000, NodeSize: 64, NextOff: 0, Fill: heap.DefaultFill})
	pay := g.AttachPayloads(records.Nodes, 8, 128)
	scratch := heap.BuildArray(g.Data, g.Rng, 40_000, 64, heap.Fill{Random: 1})
	var rcur int
	for !g.Done() {
		g.WalkList(0x1000, records, WalkOpts{
			PayloadOff: 8, Payloads: pay, PayloadLines: 1,
			Work: 200, DataBranch: true, StoreEvery: 3, MaxNodes: 2_000, Cursor: &rcur,
		})
		// Irregular scratch references neither prefetcher can cover: the
		// residual ul2-miss share of Figure 10.
		g.RandomArrayTouch(0x2000, scratch, 260, 30)
	}
}

// buildSpecJBB: Java middleware — order trees, object hash, allocation-like
// list churn; a managed-runtime mix of all pointer idioms.
func buildSpecJBB(g *Gen) {
	orders := heap.BuildTree(g.Heap, g.Rng, heap.TreeSpec{
		Nodes: 40_000, NodeSize: 48, KeyOff: 0, LeftOff: 8, RightOff: 12, Fill: heap.DefaultFill})
	objects := heap.BuildHash(g.Heap, g.Rng, heap.HashSpec{
		Buckets: 4096, Entries: 24_000, NodeSize: 48, NextOff: 4, KeyOff: 0, Fill: heap.DefaultFill})
	young := heap.BuildList(g.Heap, g.Rng, heap.ListSpec{
		Nodes: 6_000, NodeSize: 64, NextOff: 0, Fill: heap.DefaultFill})
	var ycur int
	for !g.Done() {
		for i := 0; i < 6 && !g.Done(); i++ {
			key := uint32(g.Rng.Intn(orders.Count))
			g.SearchTree(0x1000, orders, key, WalkOpts{Work: 100})
		}
		for i := 0; i < 10 && !g.Done(); i++ {
			g.LookupHash(0x2000, objects, WalkOpts{Work: 120, StoreEvery: 3})
		}
		g.WalkList(0x3000, young, WalkOpts{Work: 60, MaxNodes: 600, Cursor: &ycur})
		g.Compute(0x4000, 1200)
	}
}
