package workloads

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/trace"
)

func TestAllFifteenBenchmarks(t *testing.T) {
	all := All()
	if len(all) != 15 {
		t.Fatalf("benchmarks = %d, want 15 (Table 2)", len(all))
	}
	names := map[string]bool{}
	suites := map[string]int{}
	for _, s := range all {
		if names[s.Name] {
			t.Fatalf("duplicate name %q", s.Name)
		}
		names[s.Name] = true
		suites[s.Suite]++
	}
	if len(suites) != 6 {
		t.Fatalf("suites = %d, want 6", len(suites))
	}
	for _, want := range []string{"b2b", "quake", "tpcc-2", "verilog-gate", "specjbb-vsnet"} {
		if !names[want] {
			t.Fatalf("missing Table 2 benchmark %q", want)
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("tpcc-3")
	if err != nil || s.Name != "tpcc-3" {
		t.Fatalf("ByName = %+v, %v", s, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestSuiteRepresentatives(t *testing.T) {
	reps := SuiteRepresentatives()
	if len(reps) != 6 {
		t.Fatalf("representatives = %d, want 6", len(reps))
	}
	seen := map[string]bool{}
	for _, s := range reps {
		if seen[s.Suite] {
			t.Fatalf("suite %q represented twice", s.Suite)
		}
		seen[s.Suite] = true
	}
}

// validateCheckpoint runs structural sanity checks every generated
// benchmark must satisfy.
func validateCheckpoint(t *testing.T, s Spec, ck *trace.Checkpoint, budget int) {
	t.Helper()
	n := ck.Trace.Len()
	if n < budget || n > budget+budget/2 {
		t.Fatalf("%s: trace length %d not near budget %d", s.Name, n, budget)
	}
	if ck.Instrs <= 0 || ck.Instrs > n {
		t.Fatalf("%s: instruction count %d vs %d µops", s.Name, ck.Instrs, n)
	}
	mix := trace.MixOf(ck.Trace)
	if mix.Load == 0 || mix.Branch == 0 {
		t.Fatalf("%s: degenerate mix %v", s.Name, mix)
	}
	// Every load/store address must be mapped, and loads of chase
	// registers must read real pointers.
	for i, op := range ck.Trace.Ops {
		if op.Kind != trace.KLoad && op.Kind != trace.KStore {
			continue
		}
		if _, ok := ck.Space.Translate(op.Addr); !ok {
			t.Fatalf("%s: op %d references unmapped address %#x", s.Name, i, op.Addr)
		}
	}
}

func TestGenerateAllSmall(t *testing.T) {
	const budget = 60_000
	for _, s := range All() {
		ck := s.Generate(GenConfig{Ops: budget, Seed: 42})
		validateCheckpoint(t, s, ck, budget)
	}
}

func TestGenerationDeterministic(t *testing.T) {
	s, _ := ByName("tpcc-1")
	a := s.Generate(GenConfig{Ops: 50_000, Seed: 9})
	b := s.Generate(GenConfig{Ops: 50_000, Seed: 9})
	if a.Trace.Len() != b.Trace.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Trace.Len(), b.Trace.Len())
	}
	for i := range a.Trace.Ops {
		if a.Trace.Ops[i] != b.Trace.Ops[i] {
			t.Fatalf("op %d differs", i)
		}
	}
}

func TestCheckpointCache(t *testing.T) {
	s, _ := ByName("rc3")
	a := Checkpoint(s, 50_000)
	b := Checkpoint(s, 50_000)
	if a != b {
		t.Fatal("cache miss for identical request")
	}
	c := Checkpoint(s, 70_000)
	if a == c {
		t.Fatal("different budgets shared a checkpoint")
	}
}

// The pointer-bearing benchmarks must put scannable pointers where the
// content prefetcher will find them: scanning the lines the trace actually
// demand-loads must yield candidates.
func TestPointerBenchmarksAreScannable(t *testing.T) {
	match := core.DefaultMatch
	for _, name := range []string{"tpcc-1", "slsb", "verilog-gate", "b2b", "specjbb-vsnet"} {
		s, _ := ByName(name)
		ck := s.Generate(GenConfig{Ops: 60_000, Seed: 3})
		candidates := 0
		scanned := 0
		for _, op := range ck.Trace.Ops {
			if op.Kind != trace.KLoad || op.Addr < heapBase || op.Addr >= heapLimit {
				continue
			}
			scanned++
			if scanned > 2000 {
				break
			}
			line := ck.Space.Img.ReadLine(op.Addr, 64)
			candidates += len(match.ScanLine(op.Addr, line))
		}
		if scanned == 0 {
			t.Fatalf("%s: no heap loads in trace", name)
		}
		if candidates == 0 {
			t.Fatalf("%s: heap lines contain no scannable pointers", name)
		}
		t.Logf("%s: %d candidates across %d scanned heap lines", name, candidates, scanned)
	}
}

// Working-set spot checks: b2c must fit comfortably in 1 MiB; verilog-gate
// must far exceed 4 MiB.
func TestWorkingSetContrast(t *testing.T) {
	small, _ := ByName("b2c")
	big, _ := ByName("verilog-gate")
	ckS := small.Generate(GenConfig{Ops: 60_000, Seed: 1})
	ckB := big.Generate(GenConfig{Ops: 60_000, Seed: 1})
	// Compare pointer-arena footprints: b2c's linked data must fit the
	// 1 MiB UL2 comfortably while verilog-gate's netlist far exceeds 4 MiB.
	heapPages := func(ck *trace.Checkpoint) int {
		n := 0
		for _, pn := range ck.Space.Img.PageNumbers() {
			if va := pn << mem.PageShift; va >= heapBase && va < heapLimit {
				n++
			}
		}
		return n
	}
	wsS := heapPages(ckS) * mem.PageSize
	wsB := heapPages(ckB) * mem.PageSize
	if wsS > 512*1024 {
		t.Fatalf("b2c heap working set %d KiB too large", wsS/1024)
	}
	if wsB < 4*1024*1024 {
		t.Fatalf("verilog-gate heap working set %d KiB under 4 MiB", wsB/1024)
	}
}
