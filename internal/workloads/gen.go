// Package workloads synthesises the fifteen benchmarks of Table 2. The
// paper drives its simulator with proprietary LIT checkpoints of commercial
// applications; those are unavailable, so each benchmark here is a
// generator that (a) materialises realistic linked data structures — with
// genuine pointers — in a simulated address space, and (b) emits a µop
// trace of a traversal/processing loop over them, with register dependences
// that reconstruct the program's critical path.
//
// The mixes are tuned so the population spans the paper's observed ranges:
// L2 MPTU from ~0.1 (b2c) to ~20+ (verilog-gate), and content-prefetcher
// sensitivity from ~0 (stride/compute-bound) to large (pointer-chasing with
// per-record work).
//
// All pointer-bearing structures live inside one 16 MiB arena: with 8
// compare bits, that is exactly the prefetchable range of the virtual
// address matching heuristic, mirroring how the paper's allocator
// concentrates related heap data.
package workloads

import (
	"math/rand"

	"repro/internal/heap"
	"repro/internal/mem"
	"repro/internal/trace"
)

// Arena placement: pointer-rich heap in one 16 MiB top-byte region;
// stride-only arrays in a separate region so they do not inflate the
// content prefetcher's coverage.
const (
	heapBase  uint32 = 0x1000_0000
	heapLimit uint32 = 0x1100_0000
	dataBase  uint32 = 0x4000_0000
	dataLimit uint32 = 0x5000_0000
	// The low arena sits where its addresses' upper compare bits are all
	// zeros (static/global data in IA-32 binaries), and the high arena
	// where they are all ones (stack-like allocations). Pointers here are
	// only predictable through the matching heuristic's *filter bits*
	// (Figure 2's extreme regions).
	lowBase   uint32 = 0x0010_0000
	lowLimit  uint32 = 0x0040_0000
	highBase  uint32 = 0xFF10_0000
	highLimit uint32 = 0xFFF0_0000
)

// GenConfig scales a workload build.
type GenConfig struct {
	// Ops is the approximate µop budget of the trace.
	Ops int
	// Seed makes generation deterministic.
	Seed int64
}

// Gen is the emission context handed to each benchmark builder.
type Gen struct {
	AS    *mem.AddressSpace
	Heap  *heap.Allocator // pointer-rich arena (prefetchable range)
	Data  *heap.Allocator // stride/data arena
	Low   *heap.Allocator // all-zeros-upper-bits arena (globals)
	High  *heap.Allocator // all-ones-upper-bits arena (stack-like)
	B     *trace.Builder
	Rng   *rand.Rand
	Ops   int // budget
	Instr int // logical instruction count (Table 2 reporting)
}

func newGen(cfg GenConfig) *Gen {
	as := mem.NewAddressSpace()
	return &Gen{
		AS:   as,
		Heap: heap.NewAllocator(as, heapBase, heapLimit),
		Data: heap.NewAllocator(as, dataBase, dataLimit),
		Low:  heap.NewAllocator(as, lowBase, lowLimit),
		High: heap.NewAllocator(as, highBase, highLimit),
		B:    trace.NewBuilder(),
		Rng:  rand.New(rand.NewSource(cfg.Seed)),
		Ops:  cfg.Ops,
	}
}

// Done reports whether the µop budget is exhausted.
func (g *Gen) Done() bool { return g.B.Len() >= g.Ops }

// instr counts n logical instructions.
func (g *Gen) instr(n int) { g.Instr += n }

// Registers by convention: r1 chase pointer, r2 address temp, r3 data
// value, r4 work accumulator, r5 FP-ish accumulator, r6 index.
const (
	rChase = 1
	rAddr  = 2
	rVal   = 3
	rAcc   = 4
	rFP    = 5
	rIdx   = 6
)

// Compute emits n integer µops on the accumulator (1 instr each).
func (g *Gen) Compute(pcBase uint32, n int) {
	for i := 0; i < n; i++ {
		g.B.Int(pcBase+uint32(i%8)*4, rAcc, rAcc, trace.NoReg)
	}
	g.instr(n)
}

// ComputeFP emits n floating-point µops (1 instr each).
func (g *Gen) ComputeFP(pcBase uint32, n int) {
	for i := 0; i < n; i++ {
		g.B.FP(pcBase+uint32(i%4)*4, rFP, rFP, trace.NoReg)
	}
	g.instr(n)
}

// WorkOn emits n integer µops dependent on the loaded value in rVal,
// modelling per-record processing that serialises behind the load.
func (g *Gen) WorkOn(pcBase uint32, n int) {
	for i := 0; i < n; i++ {
		g.B.Int(pcBase+uint32(i%8)*4, rVal, rVal, trace.NoReg)
	}
	g.instr(n)
}

// LoopBranch emits the highly predictable backward branch that closes an
// iteration.
func (g *Gen) LoopBranch(pc uint32, taken bool) {
	g.B.Branch(pc, rAcc, taken)
	g.instr(1)
}

// DataBranch emits a branch whose outcome is a function of the value in
// rVal — resolves only after the producing load and mispredicts at the
// given approximate rate (driven by the value's low bits).
func (g *Gen) DataBranch(pc uint32, value uint32, biasedTaken bool) {
	taken := value&1 == 1
	if biasedTaken {
		taken = value&3 != 0 // ~75% taken: partially predictable
	}
	g.B.Branch(pc, rVal, taken)
	g.instr(1)
}

// WalkOpts tunes a linked-structure traversal.
type WalkOpts struct {
	// PayloadOff, when non-zero... see Payloads: nodes carry a pointer at
	// this offset to a scattered block that is dereferenced per node.
	PayloadOff uint32
	Payloads   map[uint32]uint32 // node -> payload block
	// PayloadLines dereferences this many sequential lines of the
	// payload block (multi-line records: the "wider" prefetching case).
	PayloadLines int
	// Work is the number of serialising integer µops per node.
	Work int
	// DataBranch adds a per-node branch on the payload value.
	DataBranch bool
	// Stores writes back to the node (record update) every N nodes
	// (0 = never).
	StoreEvery int
	// MaxNodes bounds the traversal (0 = whole structure).
	MaxNodes int
	// ChainProbes bounds hash-chain probing: the lookup walks about
	// ChainProbes nodes before "matching" (0 selects a short 1-4 probe
	// default).
	ChainProbes int
	// Cursor, when non-nil, makes bounded walks resume where the last
	// one stopped (wrapping at the tail), so successive MaxNodes-bounded
	// traversals cover the whole structure instead of its head.
	Cursor *int
}

// AttachPayloads allocates scattered blockSize-byte payload blocks in the
// pointer arena, plants a pointer to one at node+off for every node, and
// returns the node→block map.
func (g *Gen) AttachPayloads(nodes []uint32, off uint32, blockSize uint32) map[uint32]uint32 {
	blocks := make([]uint32, len(nodes))
	for i := range blocks {
		blocks[i] = g.Heap.Alloc(blockSize, 64)
		for b := uint32(0); b+4 <= blockSize; b += 4 {
			g.AS.Img.Write32(blocks[i]+b, g.Rng.Uint32()|1) // non-pointer-looking odd values
		}
	}
	g.Rng.Shuffle(len(blocks), func(i, j int) { blocks[i], blocks[j] = blocks[j], blocks[i] })
	m := make(map[uint32]uint32, len(nodes))
	for i, n := range nodes {
		m[n] = blocks[i]
		g.AS.Img.Write32(n+off, blocks[i])
	}
	return m
}

// visitNode emits the per-node body shared by the walkers: optional payload
// dereference (with multi-line records), work, data-dependent branch and
// store.
func (g *Gen) visitNode(pcBase uint32, node uint32, idx int, o WalkOpts) {
	if o.PayloadOff != 0 && o.Payloads != nil {
		pb := o.Payloads[node]
		g.B.Load(pcBase+0x04, rAddr, rChase, node+o.PayloadOff) // record pointer
		lines := o.PayloadLines
		if lines <= 0 {
			lines = 1
		}
		for ln := 0; ln < lines; ln++ {
			g.B.Load(pcBase+0x08+uint32(ln)*4, rVal, rAddr, pb+uint32(ln)*64)
		}
		g.instr(1 + lines)
		if o.DataBranch {
			g.DataBranch(pcBase+0x30, g.AS.Img.Read32(pb), true)
		}
	}
	if o.Work > 0 {
		g.WorkOn(pcBase+0x40, o.Work)
	}
	if o.StoreEvery > 0 && idx%o.StoreEvery == 0 {
		g.B.Store(pcBase+0x60, rVal, rChase, node+16)
		g.instr(1)
	}
}

// WalkList traverses l once (or MaxNodes nodes), chasing the next pointers
// through rChase. Returns the number of nodes visited.
func (g *Gen) WalkList(pcBase uint32, l *heap.List, o WalkOpts) int {
	cur := l.Head
	pos := 0
	if o.Cursor != nil && len(l.Nodes) > 0 {
		pos = *o.Cursor % len(l.Nodes)
		cur = l.Nodes[pos]
		// Re-establish the chase register at the resume point (an
		// address computation, as a real iterator would perform).
		g.B.Int(pcBase+0x78, rChase, rChase, trace.NoReg)
		g.instr(1)
	}
	visited := 0
	for cur != 0 && !g.Done() {
		if o.MaxNodes > 0 && visited >= o.MaxNodes {
			break
		}
		next := g.AS.Img.Read32(cur + l.NextOff)
		g.visitNode(pcBase, cur, visited, o)
		g.B.Load(pcBase, rChase, rChase, cur+l.NextOff) // the chase
		g.instr(1)
		g.LoopBranch(pcBase+0x7C, next != 0)
		cur = next
		pos++
		visited++
	}
	if o.Cursor != nil && len(l.Nodes) > 0 {
		*o.Cursor = pos % len(l.Nodes)
	}
	return visited
}

// SearchTree descends tr for the given key, emitting the compare/branch/
// child-load sequence per level. Returns the number of levels touched.
func (g *Gen) SearchTree(pcBase uint32, tr *heap.Tree, key uint32, o WalkOpts) int {
	cur := tr.Root
	levels := 0
	for cur != 0 && !g.Done() {
		ck := g.AS.Img.Read32(cur + tr.KeyOff)
		g.B.Load(pcBase, rVal, rChase, cur+tr.KeyOff) // key load
		g.instr(1)
		if o.Work > 0 {
			g.WorkOn(pcBase+0x40, o.Work)
		}
		if ck == key {
			g.B.Branch(pcBase+0x10, rVal, false) // exit branch, data-dep
			g.instr(1)
			levels++
			break
		}
		var off uint32
		if key < ck {
			off = tr.LeftOff
		} else {
			off = tr.RightOff
		}
		// The direction branch depends on the loaded key: essentially
		// unpredictable for random searches.
		g.B.Branch(pcBase+0x10, rVal, key < ck)
		g.B.Load(pcBase+0x14, rChase, rChase, cur+off) // child chase
		g.instr(2)
		cur = g.AS.Img.Read32(cur + off)
		levels++
	}
	return levels
}

// LookupHash probes h for a pseudo-random bucket, walking the chain with a
// key compare per node and the full record visit (payload, work, store) on
// the matched node only, like a real lookup. Returns nodes touched.
func (g *Gen) LookupHash(pcBase uint32, h *heap.Hash, o WalkOpts) int {
	b := g.Rng.Intn(h.Buckets)
	slot := h.BucketBase + uint32(b)*mem.WordSize
	// Index computation then bucket-head load.
	g.B.Int(pcBase, rIdx, rIdx, trace.NoReg)
	g.B.Load(pcBase+0x04, rChase, rIdx, slot)
	g.instr(2)
	cur := g.AS.Img.Read32(slot)
	touched := 0
	want := 1 + g.Rng.Intn(4) // a short probe, like a sparse chain
	if o.ChainProbes > 0 {
		want = o.ChainProbes - 1 + g.Rng.Intn(3)
	}
	for cur != 0 && !g.Done() {
		next := g.AS.Img.Read32(cur + h.NextOff)
		last := next == 0 || touched+1 >= want
		// Key compare on every probed node (same line as the next
		// pointer), then the compare branch. Wide index nodes also read
		// a field from their second line (full-key compare), which the
		// prefetcher's next-line widening covers.
		g.B.Load(pcBase+0x10, rVal, rChase, cur+h.KeyOff)
		if h.NodeSize >= 128 {
			g.B.Load(pcBase+0x18, rVal, rChase, cur+68)
			g.instr(1)
		}
		g.B.Branch(pcBase+0x14, rVal, !last)
		g.instr(2)
		if o.Work > 0 && !last {
			g.WorkOn(pcBase+0x40, o.Work/4)
		}
		if last {
			g.visitNode(pcBase+0x20, cur, touched, o)
			touched++
			break
		}
		g.B.Load(pcBase+0x08, rChase, rChase, cur+h.NextOff)
		g.instr(1)
		cur = next
		touched++
	}
	return touched
}

// ArrayPass streams over arr once with work per element: the stride
// prefetcher's workload. Elements are loaded line by line.
func (g *Gen) ArrayPass(pcBase uint32, arr *heap.Array, work int) {
	for i := 0; i < arr.Elems && !g.Done(); i++ {
		g.B.Load(pcBase, rVal, trace.NoReg, arr.Elem(i))
		g.instr(1)
		if work > 0 {
			g.WorkOn(pcBase+0x10, work)
		}
		g.LoopBranch(pcBase+0x50, i+1 < arr.Elems)
	}
}

// TouchLines emits one independent load per cache line of [base,
// base+size): a warm-up pass that pulls a structure into the caches before
// measurement starts, so resident-working-set benchmarks show steady-state
// (not compulsory) miss behaviour, per the Section 2.2 methodology.
func (g *Gen) TouchLines(pcBase uint32, base, size uint32) {
	n := 0
	for a := base &^ 63; a < base+size; a += 64 {
		g.B.Load(pcBase, rVal, trace.NoReg, a)
		n++
	}
	g.instr(n)
}

// TouchList warms every node (and optional payload block) of a list.
func (g *Gen) TouchList(pcBase uint32, l *heap.List, payloads map[uint32]uint32, payloadSize uint32) {
	for _, n := range l.Nodes {
		g.TouchLines(pcBase, n, l.NodeSize)
		if payloads != nil {
			g.TouchLines(pcBase+4, payloads[n], payloadSize)
		}
	}
}

// RandomArrayTouch loads n random elements of arr (irregular, non-pointer
// misses that neither prefetcher covers — Figure 10's residual).
func (g *Gen) RandomArrayTouch(pcBase uint32, arr *heap.Array, n, work int) {
	for i := 0; i < n && !g.Done(); i++ {
		e := g.Rng.Intn(arr.Elems)
		g.B.Int(pcBase, rIdx, rIdx, trace.NoReg)
		g.B.Load(pcBase+0x04, rVal, rIdx, arr.Elem(e))
		g.instr(2)
		if work > 0 {
			g.WorkOn(pcBase+0x10, work)
		}
	}
}
